/**
 * @file
 * Fundamental scalar types shared across the simulator.
 */

#ifndef PHOTON_SIM_TYPES_HPP
#define PHOTON_SIM_TYPES_HPP

#include <cstdint>

namespace photon {

/** Simulated GPU clock cycle count. The GPU clock is 1 GHz, so one cycle
 *  equals one nanosecond of simulated time. */
using Cycle = std::uint64_t;

/** Flat byte address in simulated global memory. */
using Addr = std::uint64_t;

/** Sequential wavefront (warp) identifier within one kernel launch. */
using WarpId = std::uint32_t;

/** Sequential workgroup identifier within one kernel launch. */
using WorkgroupId = std::uint32_t;

/** Number of lanes (threads) per wavefront, matching AMD GCN/CDNA. */
inline constexpr unsigned kWavefrontLanes = 64;

/** Cache line / memory transaction size in bytes. */
inline constexpr unsigned kLineBytes = 64;

/** An invalid / not-yet-assigned cycle value. */
inline constexpr Cycle kNoCycle = ~Cycle{0};

} // namespace photon

#endif // PHOTON_SIM_TYPES_HPP
