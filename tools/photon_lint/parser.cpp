/**
 * @file
 * Token-pattern parser: builds the whole-program model (functions,
 * call/mutation sites, fields, aliases, constructor-init coverage)
 * from lexed sources, plus the token-level determinism findings.
 *
 * It is a heuristic scanner, not a C++ front end: scopes are tracked
 * through brace matching, functions are recognized as
 * `name ( params ) [const ...] {` at namespace/class scope, and calls
 * are recorded by bare name. See DESIGN.md §9 for what this can and
 * cannot catch.
 */

#include <set>

#include "model.hpp"

namespace photon::lint {

Function &
Model::functionFor(const std::string &cls, const std::string &name,
                   const std::string &file, int line)
{
    std::string key = cls + "::" + name;
    auto it = functionIndex.find(key);
    if (it != functionIndex.end())
        return functions[it->second];
    functionIndex.emplace(key, functions.size());
    Function fn;
    fn.cls = cls;
    fn.name = name;
    fn.file = file;
    fn.line = line;
    functions.push_back(fn);
    return functions.back();
}

namespace {

const std::set<std::string> kCallKeywords = {
    "if",     "for",   "while",  "switch", "return", "sizeof",
    "alignof", "catch", "new",    "delete", "throw",  "decltype",
    "static_assert", "defined", "do", "else", "case",
};

const std::set<std::string> kMutatingMethods = {
    "clear",   "push_back", "pop_back",     "insert",  "emplace",
    "emplace_back", "try_emplace", "assign", "resize", "erase",
    "reserve", "store",     "fetch_add",    "fetch_sub", "exchange",
    "push",    "pop",       "swap",
};

const std::set<std::string> kAssignOps = {
    "=",  "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
};

const std::set<std::string> kBannedCalls = {
    "rand", "srand", "drand48", "lrand48", "gettimeofday", "time",
    "clock",
};

bool
isTag(const std::string &t)
{
    return t == "PHOTON_PHASE_FRONT" || t == "PHOTON_PHASE_COMMIT" ||
           t == "PHOTON_SHARED_STATE" || t == "PHOTON_PHASE_EXEMPT" ||
           t == "PHOTON_DET_SINK" || t == "PHOTON_DET_SOURCE_OK";
}

class Parser
{
  public:
    Parser(const LexedFile &file, Model &model, const Options &options)
        : f_(file), m_(model), o_(options)
    {}

    void
    run()
    {
        for (const auto &waiver : f_.waivers) {
            if (waiver.second.find("soa-hot-path") != std::string::npos) {
                m_.hotPathFiles.insert(f_.path);
                break;
            }
        }
        parseScopeBody("", false);
        if (o_.determinismCheck)
            tokenScan();
    }

  private:
    const LexedFile &f_;
    Model &m_;
    const Options &o_;
    std::size_t i_ = 0;

    const Token &
    tok(std::size_t ahead = 0) const
    {
        std::size_t idx = i_ + ahead;
        if (idx >= f_.tokens.size())
            idx = f_.tokens.size() - 1;
        return f_.tokens[idx];
    }

    bool atEnd() const { return tok().kind == Token::Kind::End; }
    void advance()
    {
        if (!atEnd())
            ++i_;
    }

    /** Consume a balanced pair; assumes current token is @p open. */
    void
    skipBalanced(const char *open, const char *close)
    {
        int depth = 0;
        while (!atEnd()) {
            if (tok().is(open))
                ++depth;
            else if (tok().is(close))
                --depth;
            advance();
            if (depth == 0)
                return;
        }
    }

    /** Consume a balanced template-argument list starting at `<`.
     *  Bails (without consuming) on `;`/`{`/`}` so a comparison
     *  operator mistaken for a template bracket cannot run away.
     *  When @p argsOut is given, the consumed tokens (brackets
     *  included) are appended space-joined. */
    void
    skipAngles(std::string *argsOut = nullptr)
    {
        int depth = 0;
        while (!atEnd()) {
            if (tok().is(";") || tok().is("{") || tok().is("}"))
                return;
            if (tok().is("<"))
                ++depth;
            else if (tok().is(">"))
                --depth;
            else if (tok().is(">>"))
                depth -= 2;
            else if (tok().is("(")) {
                skipBalanced("(", ")");
                continue;
            }
            if (argsOut != nullptr) {
                *argsOut += tok().text;
                *argsOut += ' ';
            }
            advance();
            if (depth <= 0)
                return;
        }
    }

    /** Consume up to and including the next top-level `;` (stops
     *  before an unbalanced `}`). */
    void
    skipToSemi()
    {
        while (!atEnd()) {
            if (tok().is(";")) {
                advance();
                return;
            }
            if (tok().is("}"))
                return;
            if (tok().is("{")) {
                skipBalanced("{", "}");
                continue;
            }
            if (tok().is("(")) {
                skipBalanced("(", ")");
                continue;
            }
            advance();
        }
    }

    // ---- scopes ---------------------------------------------------

    void
    parseScopeBody(const std::string &cls, bool isClass)
    {
        while (!atEnd() && !tok().is("}")) {
            std::size_t before = i_;
            if (isClass && tok().isIdent() && tok(1).is(":") &&
                (tok().is("public") || tok().is("private") ||
                 tok().is("protected"))) {
                advance();
                advance();
                continue;
            }
            if (tok().is("inline") && tok(1).is("namespace"))
                advance();
            if (tok().is("namespace")) {
                parseNamespace();
                continue;
            }
            if (tok().is("template")) {
                advance();
                if (tok().is("<"))
                    skipAngles();
                continue;
            }
            if (tok().is("using") || tok().is("typedef")) {
                parseUsing();
                continue;
            }
            if (tok().is("enum")) {
                while (!atEnd() && !tok().is("{") && !tok().is(";"))
                    advance();
                if (tok().is("{"))
                    skipBalanced("{", "}");
                skipToSemi();
                continue;
            }
            if (tok().is("friend")) {
                skipToSemi();
                continue;
            }
            if (tok().is("class") || tok().is("struct")) {
                parseClass();
                continue;
            }
            if (tok().is(";")) {
                advance();
                continue;
            }
            parseDeclaration(cls, isClass);
            if (i_ == before) // safety: never stall
                advance();
        }
    }

    void
    parseNamespace()
    {
        advance(); // namespace
        while (tok().isIdent() || tok().is("::"))
            advance();
        if (tok().is("=")) { // namespace alias
            skipToSemi();
            return;
        }
        if (tok().is("{")) {
            advance();
            parseScopeBody("", false);
            if (tok().is("}"))
                advance();
        }
    }

    void
    parseUsing()
    {
        advance(); // using / typedef
        if (tok().is("namespace")) {
            skipToSemi();
            return;
        }
        std::string name;
        std::string rhs;
        bool after_eq = false;
        while (!atEnd() && !tok().is(";")) {
            if (tok().is("=")) {
                after_eq = true;
            } else if (after_eq) {
                rhs += tok().text;
                rhs += ' ';
            } else if (tok().isIdent()) {
                name = tok().text;
            }
            advance();
        }
        advance(); // ;
        if (after_eq && !name.empty())
            m_.aliases[name] = rhs;
    }

    void
    parseClass()
    {
        advance(); // class / struct
        std::string name;
        while (!atEnd() && !tok().is("{") && !tok().is(";")) {
            if (tok().is(":")) { // base clause
                while (!atEnd() && !tok().is("{") && !tok().is(";"))
                    advance();
                break;
            }
            if (tok().is("<")) {
                skipAngles();
                continue;
            }
            if (tok().isIdent() && !tok().is("final"))
                name = tok().text;
            else if (!tok().isIdent())
                break; // elaborated type in a declaration, not a class
            advance();
        }
        if (tok().is("{")) {
            advance();
            parseScopeBody(name, true);
            if (tok().is("}"))
                advance();
            skipToSemi(); // trailing declarator and/or `;`
        } else if (tok().is(";")) {
            advance();
        }
    }

    // ---- declarations --------------------------------------------

    void
    parseDeclaration(const std::string &cls, bool isClass)
    {
        const int decl_line = tok().line;
        bool tag_front = false, tag_commit = false, tag_shared = false,
             tag_exempt = false, tag_det_sink = false,
             tag_det_source_ok = false;
        std::string guard_mutex;   ///< PHOTON_GUARDED_BY argument
        std::string requires_lock; ///< PHOTON_REQUIRES_LOCK argument
        bool saw_parens = false, saw_assign = false, has_init = false,
             is_static = false;
        std::string func_name;
        std::string explicit_cls;
        std::string templ_args; ///< tokens inside `<...>` groups
        std::vector<Token> head;  ///< top-level tokens before terminator
        std::vector<Token> params;
        std::set<std::string> ctor_inits;
        bool body_follows = false;

        while (!atEnd()) {
            const Token &t = tok();
            if (t.is("}"))
                break; // unbalanced: let the caller see it
            if (t.isIdent() && isTag(t.text)) {
                tag_front |= t.is("PHOTON_PHASE_FRONT");
                tag_commit |= t.is("PHOTON_PHASE_COMMIT");
                tag_shared |= t.is("PHOTON_SHARED_STATE");
                tag_exempt |= t.is("PHOTON_PHASE_EXEMPT");
                tag_det_sink |= t.is("PHOTON_DET_SINK");
                tag_det_source_ok |= t.is("PHOTON_DET_SOURCE_OK");
                advance();
                continue;
            }
            if (t.isIdent() &&
                (t.is("PHOTON_GUARDED_BY") ||
                 t.is("PHOTON_REQUIRES_LOCK")) &&
                tok(1).is("(")) {
                // Argument macro: capture the last identifier inside
                // the parens as the mutex name (handles `mu_`,
                // `this->mu_`, `store.mu`).
                const bool guarded = t.is("PHOTON_GUARDED_BY");
                advance(); // macro name; now at `(`
                int depth = 0;
                std::string arg;
                while (!atEnd()) {
                    if (tok().is("(")) {
                        ++depth;
                    } else if (tok().is(")")) {
                        --depth;
                        if (depth == 0) {
                            advance();
                            break;
                        }
                    } else if (tok().isIdent() && !tok().is("std") &&
                               !tok().is("this")) {
                        arg = tok().text;
                    }
                    advance();
                }
                if (guarded)
                    guard_mutex = arg;
                else
                    requires_lock = arg;
                continue;
            }
            if (t.is("static") || t.is("constexpr")) {
                is_static = true;
                advance();
                continue;
            }
            if (t.is("virtual") || t.is("explicit") || t.is("inline") ||
                t.is("mutable") || t.is("extern")) {
                advance();
                continue;
            }
            if (t.is("[")) { // attribute or array declarator
                skipBalanced("[", "]");
                continue;
            }
            if (t.is("<")) {
                head.push_back(t); // keep a marker: templated type
                skipAngles(&templ_args);
                continue;
            }
            if (t.is("~") && tok(1).isIdent()) { // destructor
                Token merged = tok(1);
                merged.text = "~" + merged.text;
                head.push_back(merged);
                advance();
                advance();
                continue;
            }
            if (t.is("operator")) { // operator=, operator(), ...
                Token merged = t;
                merged.text = "operator";
                advance();
                while (!atEnd() && !tok().is("(") && !tok().is(";")) {
                    merged.text += tok().text;
                    advance();
                }
                if (merged.text == "operator" && tok().is("(")) {
                    // operator(): the call parens follow the name parens
                    merged.text = "operator()";
                    skipBalanced("(", ")");
                }
                head.push_back(merged);
                continue;
            }
            if (t.is("(")) {
                if (!saw_parens && !saw_assign && !head.empty() &&
                    head.back().isIdent()) {
                    func_name = head.back().text;
                    std::size_t n = head.size();
                    if (n >= 3 && head[n - 2].is("::") &&
                        head[n - 3].isIdent())
                        explicit_cls = head[n - 3].text;
                    saw_parens = true;
                    collectBalanced(params);
                } else {
                    skipBalanced("(", ")");
                }
                continue;
            }
            if (t.is("=")) {
                // Initializer (field/var) or `= default/delete/0` on a
                // function: nothing past here changes the model, and
                // initializer expressions may contain comparison `<`
                // that would confuse the template skipper.
                saw_assign = true;
                has_init = true;
                skipToSemi();
                break;
            }
            if (t.is("{")) {
                if (saw_parens && !saw_assign) {
                    body_follows = true;
                } else {
                    has_init = true;
                    skipBalanced("{", "}");
                }
                if (body_follows)
                    break;
                continue;
            }
            if (t.is(":") && saw_parens && !saw_assign) {
                // Constructor initializer list.
                advance();
                parseCtorInits(ctor_inits);
                if (tok().is("{"))
                    body_follows = true;
                break;
            }
            if (t.is(";")) {
                advance();
                break;
            }
            head.push_back(t);
            advance();
        }

        if (saw_parens && !func_name.empty()) {
            std::string owner = !explicit_cls.empty() ? explicit_cls : cls;
            Function &fn = m_.functionFor(owner, func_name, f_.path,
                                          decl_line);
            fn.tagFront |= tag_front;
            fn.tagCommit |= tag_commit;
            fn.tagShared |= tag_shared;
            fn.tagExempt |= tag_exempt;
            fn.tagDetSink |= tag_det_sink;
            fn.tagDetSourceOk |= tag_det_source_ok;
            if (fn.requiresLock.empty())
                fn.requiresLock = requires_lock;
            if (body_follows) {
                fn.hasBody = true;
                fn.file = f_.path;
                fn.line = decl_line;
                recordParams(params);
                if (!ctor_inits.empty() && func_name == owner)
                    m_.ctorInits[owner].insert(ctor_inits.begin(),
                                               ctor_inits.end());
                const std::size_t body_begin = i_; // the body `{`
                parseBody(fn);
                fn.cfg = std::make_shared<Cfg>(
                    buildCfg(f_, body_begin, i_));
            }
            return;
        }

        if (isClass && !saw_parens && !head.empty()) {
            // Field declaration: last identifier is the member name.
            std::size_t name_idx = head.size();
            for (std::size_t k = head.size(); k-- > 0;) {
                if (head[k].isIdent()) {
                    name_idx = k;
                    break;
                }
            }
            if (name_idx == head.size())
                return;
            Field field;
            field.cls = cls;
            field.name = head[name_idx].text;
            field.file = f_.path;
            field.line = decl_line;
            field.tagShared = tag_shared;
            field.tagDetSink = tag_det_sink;
            field.guardMutex = guard_mutex;
            field.hasInit = has_init;
            field.isStatic = is_static;
            field.waivedUninit = f_.waived(decl_line, "uninit-ok");
            field.waivedAos = f_.waived(decl_line, "aos-ok");
            field.templateArgs = templ_args;
            std::string type;
            for (std::size_t k = 0; k < name_idx; ++k) {
                if (head[k].is("&"))
                    field.isRef = true;
                type += head[k].text;
                type += ' ';
            }
            field.type = type;
            m_.fields.push_back(field);
            m_.varTypes[field.name].push_back(type);
        }
    }

    /** Collect tokens of a balanced paren group (outer parens
     *  excluded) into @p out, consuming the group. */
    void
    collectBalanced(std::vector<Token> &out)
    {
        int depth = 0;
        while (!atEnd()) {
            if (tok().is("("))
                ++depth;
            else if (tok().is(")"))
                --depth;
            if (depth == 0) {
                advance(); // closing paren
                return;
            }
            if (!(depth == 1 && tok().is("(")))
                out.push_back(tok());
            advance();
        }
    }

    /** Parse `member(args), member{args}, ...` up to the body `{`. */
    void
    parseCtorInits(std::set<std::string> &out)
    {
        std::string last_ident;
        while (!atEnd()) {
            const Token &t = tok();
            if (t.is("{") && last_ident.empty())
                return; // body (defensive)
            if (t.isIdent()) {
                last_ident = t.text;
                advance();
                continue;
            }
            if (t.is("(") || t.is("{")) {
                if (!last_ident.empty())
                    out.insert(last_ident);
                skipBalanced(t.is("(") ? "(" : "{",
                             t.is("(") ? ")" : "}");
                last_ident.clear();
                if (!tok().is(","))
                    return; // next token should be the body `{`
                advance();
                continue;
            }
            if (t.is("<")) {
                skipAngles();
                continue;
            }
            advance();
        }
    }

    /** Record parameter names with their type strings. */
    void
    recordParams(const std::vector<Token> &params)
    {
        std::size_t start = 0;
        int depth = 0;
        for (std::size_t k = 0; k <= params.size(); ++k) {
            bool at_end = k == params.size();
            if (!at_end) {
                const Token &t = params[k];
                if (t.is("(") || t.is("[") || t.is("{") || t.is("<"))
                    ++depth;
                else if (t.is(")") || t.is("]") || t.is("}") ||
                         t.is(">"))
                    --depth;
                else if (t.is(">>"))
                    depth -= 2;
                if (!(t.is(",") && depth == 0))
                    continue;
            }
            // One parameter in [start, k).
            std::size_t name_idx = k;
            for (std::size_t j = start; j < k; ++j) {
                if (params[j].is("="))
                    break;
                if (params[j].isIdent())
                    name_idx = j;
            }
            if (name_idx != k) {
                std::string type;
                for (std::size_t j = start; j < k; ++j) {
                    if (j == name_idx)
                        continue;
                    type += params[j].text;
                    type += ' ';
                }
                m_.varTypes[params[name_idx].text].push_back(type);
            }
            start = k + 1;
        }
    }

    // ---- function bodies -----------------------------------------

    /** Target of a (possibly member-chained) mutation starting at
     *  token index @p j: last identifier of `a.b->c`. Returns the
     *  index one past the chain via @p end. */
    std::string
    chainTarget(std::size_t j, std::size_t &end) const
    {
        std::string target;
        while (j < f_.tokens.size() && f_.tokens[j].isIdent()) {
            target = f_.tokens[j].text;
            if (f_.tokens[j + 1].is(".") || f_.tokens[j + 1].is("->"))
                j += 2;
            else
                break;
        }
        end = j + 1;
        return target;
    }

    void
    noteRangeFor(Function &fn)
    {
        // Lookahead from the `(` after `for`: a top-level `:` marks a
        // range-for; the range expression runs to the closing paren.
        std::size_t j = i_ + 1; // the `(`
        int depth = 0;
        bool range = false;
        const Token *last = nullptr;
        bool last_is_range_end = false;
        for (; j < f_.tokens.size(); ++j) {
            const Token &t = f_.tokens[j];
            if (t.is("("))
                ++depth;
            else if (t.is(")")) {
                --depth;
                if (depth == 0)
                    break;
            } else if (depth == 1 && t.is(";")) {
                return; // classic for
            } else if (depth == 1 && t.is(":")) {
                range = true;
                last = nullptr;
            } else if (range) {
                last = &t;
                last_is_range_end = t.isIdent();
            }
        }
        if (!range || last == nullptr || !last_is_range_end)
            return;
        RangeForSite site;
        site.base = last->text;
        site.file = f_.path;
        site.line = tok().line;
        site.waived = f_.waived(tok().line, "order-insensitive");
        fn.rangeFors.push_back(site);
    }

    void
    parseBody(Function &fn)
    {
        int depth = 0; // current token is the body `{`
        while (!atEnd()) {
            const Token &t = tok();
            if (t.is("{")) {
                ++depth;
                advance();
                continue;
            }
            if (t.is("}")) {
                --depth;
                advance();
                if (depth == 0)
                    return;
                continue;
            }
            if (t.is("for") && tok(1).is("(")) {
                noteRangeFor(fn);
                advance();
                continue;
            }
            if ((t.is("++") || t.is("--")) && tok(1).isIdent()) {
                std::size_t end = 0;
                std::string target = chainTarget(i_ + 1, end);
                if (!target.empty())
                    fn.mutations.push_back(
                        {target, f_.path, t.line, t.text});
                advance();
                continue;
            }
            if (t.isIdent()) {
                const Token &next = tok(1);
                if ((t.is("unordered_map") || t.is("unordered_set"))) {
                    noteUnorderedLocal();
                    advance();
                    continue;
                }
                if (next.is("(")) {
                    if (!kCallKeywords.count(t.text)) {
                        fn.calls.push_back(
                            {t.text, f_.path, t.line,
                             f_.waived(t.line, "serial-only")});
                    }
                    advance();
                    continue;
                }
                if (next.kind == Token::Kind::Punct &&
                    kAssignOps.count(next.text)) {
                    fn.mutations.push_back(
                        {t.text, f_.path, t.line, next.text});
                    advance();
                    continue;
                }
                if (next.is("++") || next.is("--")) {
                    fn.mutations.push_back(
                        {t.text, f_.path, t.line, next.text});
                    advance();
                    continue;
                }
                if (next.is("[")) {
                    // a[...] op: peek past the subscript.
                    std::size_t j = i_ + 1;
                    int d = 0;
                    for (; j < f_.tokens.size(); ++j) {
                        if (f_.tokens[j].is("["))
                            ++d;
                        else if (f_.tokens[j].is("]")) {
                            --d;
                            if (d == 0)
                                break;
                        }
                    }
                    if (j + 1 < f_.tokens.size()) {
                        const Token &after = f_.tokens[j + 1];
                        if (after.kind == Token::Kind::Punct &&
                            (kAssignOps.count(after.text) ||
                             after.is("++") || after.is("--"))) {
                            fn.mutations.push_back(
                                {t.text, f_.path, t.line,
                                 "[]" + after.text});
                        }
                    }
                    advance();
                    continue;
                }
                if ((next.is(".") || next.is("->")) &&
                    tok(2).isIdent() && tok(3).is("(") &&
                    kMutatingMethods.count(tok(2).text)) {
                    fn.mutations.push_back({t.text, f_.path, t.line,
                                            "." + tok(2).text});
                    advance();
                    continue;
                }
                advance();
                continue;
            }
            advance();
        }
    }

    /** `std::unordered_map<...> name` inside a body: record the local
     *  so range-for checks can type it. */
    void
    noteUnorderedLocal()
    {
        std::string container = tok().text;
        std::size_t j = i_ + 1;
        if (j < f_.tokens.size() && f_.tokens[j].is("<")) {
            int d = 0;
            for (; j < f_.tokens.size(); ++j) {
                if (f_.tokens[j].is("<"))
                    ++d;
                else if (f_.tokens[j].is(">"))
                    --d;
                else if (f_.tokens[j].is(">>"))
                    d -= 2;
                if (d <= 0) {
                    ++j;
                    break;
                }
            }
        }
        if (j < f_.tokens.size() && f_.tokens[j].isIdent())
            m_.varTypes[f_.tokens[j].text].push_back("std :: " +
                                                     container + " < > ");
    }

    // ---- token-level determinism scan ----------------------------

    void
    tokenScan()
    {
        const std::vector<Token> &ts = f_.tokens;
        for (std::size_t k = 0; k < ts.size(); ++k) {
            const Token &t = ts[k];
            if (!t.isIdent())
                continue;
            if (t.is("random_device")) {
                if (!f_.waived(t.line, "nondeterminism-ok"))
                    m_.tokenDiags.push_back(
                        {Kind::NondeterministicCall, f_.path, t.line,
                         "use of 'std::random_device' is nondeterministic"
                         "; use the seeded simulator RNG (sim/rng.hpp)",
                         {}});
                continue;
            }
            if (kBannedCalls.count(t.text) && k + 1 < ts.size() &&
                ts[k + 1].is("(")) {
                bool member = k > 0 && (ts[k - 1].is(".") ||
                                        ts[k - 1].is("->"));
                if (!member && !f_.waived(t.line, "nondeterminism-ok"))
                    m_.tokenDiags.push_back(
                        {Kind::NondeterministicCall, f_.path, t.line,
                         "call to '" + t.text +
                             "' makes results depend on wall clock or "
                             "libc random state",
                         {}});
                continue;
            }
            // std::map / std::set keyed by a pointer type.
            if ((t.is("map") || t.is("set") || t.is("multimap") ||
                 t.is("multiset")) &&
                k >= 2 && ts[k - 1].is("::") && ts[k - 2].is("std") &&
                k + 1 < ts.size() && ts[k + 1].is("<")) {
                int d = 0;
                std::size_t j = k + 1;
                const Token *last_key_tok = nullptr;
                for (; j < ts.size(); ++j) {
                    if (ts[j].is("<"))
                        ++d;
                    else if (ts[j].is(">"))
                        --d;
                    else if (ts[j].is(">>"))
                        d -= 2;
                    else if (d == 1 && ts[j].is(","))
                        break;
                    else if (d >= 1)
                        last_key_tok = &ts[j];
                    if (d <= 0)
                        break;
                }
                if (last_key_tok != nullptr && last_key_tok->is("*") &&
                    !f_.waived(t.line, "pointer-key-ok")) {
                    m_.tokenDiags.push_back(
                        {Kind::PointerKeyedOrder, f_.path, t.line,
                         "ordered container 'std::" + t.text +
                             "' keyed by pointer value iterates in "
                             "allocation-dependent order",
                         {}});
                }
            }
        }
    }
};

} // namespace

void
parseFile(const LexedFile &file, Model &model, const Options &options)
{
    Parser(file, model, options).run();
}

} // namespace photon::lint
