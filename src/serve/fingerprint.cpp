#include "serve/fingerprint.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

namespace photon::serve {

std::uint64_t
fnv1a(std::uint64_t h, const void *bytes, std::size_t n)
{
    const auto *p = static_cast<const unsigned char *>(bytes);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

std::uint64_t
fnv1aString(std::uint64_t h, const std::string &s)
{
    std::uint64_t len = s.size();
    h = fnv1a(h, &len, sizeof(len));
    return fnv1a(h, s.data(), s.size());
}

std::uint64_t
fingerprintGpuBbv(const sampling::GpuBbv &signature)
{
    std::uint64_t h = kFnvBasis;
    std::uint32_t dims = signature.dims();
    std::uint32_t clusters = signature.numClusters();
    h = fnv1a(h, &dims, sizeof(dims));
    h = fnv1a(h, &clusters, sizeof(clusters));
    for (double v : signature.vec()) {
        std::uint64_t bits = 0;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        h = fnv1a(h, &bits, sizeof(bits));
    }
    return h;
}

std::uint64_t
fingerprintSpec(const service::JobSpec &spec)
{
    std::uint64_t h = kFnvBasis;
    h = fnv1aString(h, spec.workload);
    h = fnv1a(h, &spec.size, sizeof(spec.size));
    h = fnv1aString(h, spec.mode);
    h = fnv1aString(h, spec.gpu);
    return h;
}

std::uint64_t
fingerprintAnalyses(const sampling::PhotonSampler::AnalysisStore &analyses,
                    const std::string &mode, const std::string &gpu)
{
    if (analyses.empty())
        return 0;
    std::vector<const std::string *> keys;
    keys.reserve(analyses.size());
    for (const auto &entry : analyses) // photon-lint: order-insensitive
        keys.push_back(&entry.first);
    std::sort(keys.begin(), keys.end(),
              [](const std::string *a, const std::string *b) {
                  return *a < *b;
              });
    std::uint64_t h = kFnvBasis;
    h = fnv1aString(h, mode);
    h = fnv1aString(h, gpu);
    for (const std::string *key : keys) {
        h = fnv1aString(h, *key);
        std::uint64_t sig = fingerprintGpuBbv(analyses.at(*key).signature);
        h = fnv1a(h, &sig, sizeof(sig));
    }
    return h;
}

} // namespace photon::serve
