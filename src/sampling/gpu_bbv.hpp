/**
 * @file
 * GPU BBV (paper Figure 5): the kernel-level signature used for
 * kernel-sampling. Per-warp BBVs are projected to a fixed size, warps are
 * clustered by BBV equality, cluster weights are computed, and the
 * weighted projected BBVs — sorted by descending weight — are
 * concatenated into one vector.
 */

#ifndef PHOTON_SAMPLING_GPU_BBV_HPP
#define PHOTON_SAMPLING_GPU_BBV_HPP

#include <cstdint>
#include <vector>

#include "sampling/warp_class.hpp"

namespace photon::sampling {

/** Kernel-level behaviour signature. */
class GpuBbv
{
  public:
    GpuBbv() = default;

    /**
     * Build a signature from a classifier's warp types.
     *
     * @param classifier warp types with populations
     * @param dims per-cluster projected dimensionality (paper: 16)
     * @param max_clusters keep only the heaviest clusters
     */
    static GpuBbv build(const WarpClassifier &classifier,
                        std::uint32_t dims, std::uint32_t max_clusters);

    /** Rebuild a signature from its exported representation (the
     *  artifact-store deserialization hook). @p vec must be
     *  clusters x dims long, as produced by vec(). */
    static GpuBbv
    fromRaw(std::vector<double> vec, std::uint32_t dims,
            std::uint32_t clusters)
    {
        GpuBbv s;
        s.vec_ = std::move(vec);
        s.dims_ = dims;
        s.clusters_ = clusters;
        return s;
    }

    /**
     * Distance between signatures: L1 over the weighted concatenation,
     * normalised so identical signatures give 0 and disjoint ones give
     * about 2. Signatures with different dims compare as maximally far.
     */
    double distance(const GpuBbv &other) const;

    const std::vector<double> &vec() const { return vec_; }
    std::uint32_t dims() const { return dims_; }
    std::uint32_t numClusters() const { return clusters_; }
    bool empty() const { return vec_.empty(); }

  private:
    std::vector<double> vec_; ///< clusters_ x dims_, weight-scaled
    std::uint32_t dims_ = 0;
    std::uint32_t clusters_ = 0;
};

} // namespace photon::sampling

#endif // PHOTON_SAMPLING_GPU_BBV_HPP
