/** @file Tests for the unified stability framework: StabilityDetector
 *  (rolling window, local-optimum guard, kernel-boundary reset) and the
 *  SwitchGovernor shared by the warp- and basic-block-level policies. */

#include <gtest/gtest.h>

#include "sampling/stability.hpp"
#include "sim/rng.hpp"

using namespace photon;
using namespace photon::sampling;

namespace {

/** Feed `count` points with execution time from `dur(i)`. */
void
feed(StabilityDetector &det, int count, double (*dur)(int), int offset = 0)
{
    for (int i = 0; i < count; ++i) {
        double issue = (offset + i) * 10.0;
        det.addPoint(issue, issue + dur(offset + i));
    }
}

} // namespace

TEST(StabilityDetector, NotStableBeforeFullHistory)
{
    StabilityDetector det(64, 0.05);
    feed(det, 127, [](int) { return 100.0; });
    EXPECT_FALSE(det.stable()); // needs 2n = 128 points
    det.addPoint(1280.0, 1380.0);
    EXPECT_TRUE(det.stable());
}

TEST(StabilityDetector, StationaryStreamIsStable)
{
    StabilityDetector det(64, 0.05);
    feed(det, 256, [](int) { return 100.0; });
    EXPECT_TRUE(det.stable());
    EXPECT_NEAR(det.meanExecTime(), 100.0, 1e-9);
}

TEST(StabilityDetector, NoisyStationaryStreamIsStable)
{
    StabilityDetector det(256, 0.05);
    Rng rng(5);
    for (int i = 0; i < 1024; ++i) {
        double issue = i * 10.0;
        double d = 100.0 + static_cast<double>(rng.nextBelow(9)) - 4.0;
        det.addPoint(issue, issue + d);
    }
    EXPECT_TRUE(det.stable());
}

TEST(StabilityDetector, RampIsNotStable)
{
    // Execution time doubles across the window: the mean guard fires.
    StabilityDetector det(64, 0.05);
    feed(det, 128, [](int i) { return 100.0 + i; });
    EXPECT_FALSE(det.stable());
}

TEST(StabilityDetector, StepChangeDetectedThenReconverges)
{
    StabilityDetector det(64, 0.05);
    feed(det, 128, [](int) { return 100.0; });
    EXPECT_TRUE(det.stable());
    // Level shift: previous-window mean disagrees.
    feed(det, 64, [](int) { return 200.0; }, 128);
    EXPECT_FALSE(det.stable());
    // After 2n points at the new level, stable again.
    feed(det, 128, [](int) { return 200.0; }, 192);
    EXPECT_TRUE(det.stable());
    EXPECT_NEAR(det.meanExecTime(), 200.0, 1e-9);
}

TEST(StabilityDetector, MeanWindowsTrackHistory)
{
    StabilityDetector det(4, 0.05);
    for (int i = 0; i < 4; ++i)
        det.addPoint(i, i + 10.0);
    for (int i = 4; i < 8; ++i)
        det.addPoint(i, i + 30.0);
    EXPECT_NEAR(det.meanExecTime(), 30.0, 1e-9);
    EXPECT_NEAR(det.previousMeanExecTime(), 10.0, 1e-9);
}

TEST(StabilityDetector, MeanFallsBackBeforeFullWindow)
{
    StabilityDetector det(64, 0.05);
    det.addPoint(0, 40);
    det.addPoint(10, 70); // durations 40 and 60
    EXPECT_NEAR(det.meanExecTime(), 50.0, 1e-9);
}

TEST(StabilityDetector, ExactThresholdDriftIsRejected)
{
    // The criterion is strict: |drift| < delta, so a drift of exactly
    // delta must not count as stable. With prev mean 100 and recent
    // mean 125, drift = 0.25 exactly (both representable).
    StabilityDetector det(4, 0.25);
    feed(det, 4, [](int) { return 100.0; });
    feed(det, 4, [](int) { return 125.0; }, 4);
    EXPECT_NEAR(det.relativeDrift(), 0.25, 1e-15);
    EXPECT_FALSE(det.stable());

    // An epsilon under the threshold is accepted.
    StabilityDetector det_lo(4, 0.25);
    feed(det_lo, 4, [](int) { return 100.0; });
    feed(det_lo, 4, [](int) { return 124.0; }, 4);
    EXPECT_TRUE(det_lo.stable());
}

TEST(StabilityDetector, TransientPlateauRejectedByLocalOptimumGuard)
{
    // A ramp followed by exactly n flat points: the most recent window
    // is perfectly flat, but the n-vs-2n comparison still sees the ramp
    // tail and must reject (the paper's local-optimum guard).
    StabilityDetector det(64, 0.05);
    feed(det, 64, [](int i) { return 100.0 + 2.0 * i; }); // ramps to 226
    feed(det, 64, [](int) { return 230.0; }, 64);
    EXPECT_FALSE(det.stable());
    // Another n flat points push the ramp out of the 2n history.
    feed(det, 64, [](int) { return 230.0; }, 128);
    EXPECT_TRUE(det.stable());
}

TEST(StabilityDetector, ResetForgetsAllHistory)
{
    // Kernel-boundary reset: observations from one kernel must never
    // vouch for the stability of the next.
    StabilityDetector det(64, 0.05);
    feed(det, 128, [](int) { return 100.0; });
    ASSERT_TRUE(det.stable());
    ASSERT_EQ(det.totalPoints(), 128u);

    det.reset();
    EXPECT_EQ(det.totalPoints(), 0u);
    EXPECT_FALSE(det.stable());
    EXPECT_EQ(det.meanExecTime(), 0.0);

    // A fresh stream must fill the full 2n again before stabilizing.
    feed(det, 127, [](int) { return 50.0; });
    EXPECT_FALSE(det.stable());
    det.addPoint(1280.0, 1330.0);
    EXPECT_TRUE(det.stable());
    EXPECT_NEAR(det.meanExecTime(), 50.0, 1e-9);
}

TEST(StabilityDetector, SnapshotFreezesState)
{
    StabilityDetector det(4, 0.05);
    feed(det, 8, [](int) { return 100.0; });
    StabilitySnapshot snap = det.snapshot();
    EXPECT_EQ(snap.points, 8u);
    EXPECT_TRUE(snap.stable);
    EXPECT_NEAR(snap.meanRecent, 100.0, 1e-9);
    EXPECT_NEAR(snap.meanPrev, 100.0, 1e-9);
    EXPECT_NEAR(snap.drift, 0.0, 1e-12);

    // The snapshot is a copy: later points do not mutate it.
    feed(det, 4, [](int) { return 900.0; }, 8);
    EXPECT_TRUE(snap.stable);
    EXPECT_FALSE(det.stable());
}

TEST(StabilityDetector, DeltaAccessorsRoundTrip)
{
    StabilityDetector det(128, 0.03);
    EXPECT_EQ(det.window(), 128u);
    EXPECT_NEAR(det.delta(), 0.03, 1e-15);
}

/** Parameterised: the delta threshold cleanly separates drift rates. */
class DeltaSweep : public ::testing::TestWithParam<double>
{};

TEST_P(DeltaSweep, DriftJustAboveDeltaRejected)
{
    double delta = GetParam();
    StabilityDetector det(128, delta);
    // Per-window relative drift slightly above/below delta.
    double grow_hi = (1.0 + 1.5 * delta);
    StabilityDetector det_lo(128, delta);
    double grow_lo = (1.0 + 0.3 * delta);
    for (int i = 0; i < 256; ++i) {
        double issue = i * 10.0;
        double scale_hi = i < 128 ? 1.0 : grow_hi;
        double scale_lo = i < 128 ? 1.0 : grow_lo;
        det.addPoint(issue, issue + 100.0 * scale_hi);
        det_lo.addPoint(issue, issue + 100.0 * scale_lo);
    }
    EXPECT_FALSE(det.stable());
    EXPECT_TRUE(det_lo.stable());
}

INSTANTIATE_TEST_SUITE_P(Deltas, DeltaSweep,
                         ::testing::Values(0.02, 0.05, 0.10, 0.20));

// ----- SwitchGovernor -----

TEST(SwitchGovernor, ThrottlesChecksToTheInterval)
{
    SwitchGovernor gov(8, 1);
    int calls = 0;
    auto always = [&] {
        ++calls;
        return true;
    };
    for (int i = 0; i < 7; ++i) {
        gov.recordEvent();
        EXPECT_FALSE(gov.poll(always));
    }
    EXPECT_EQ(calls, 0); // predicate never evaluated before interval
    gov.recordEvent();
    EXPECT_TRUE(gov.poll(always));
    EXPECT_EQ(calls, 1);
}

TEST(SwitchGovernor, RequiresConsecutiveConfirmations)
{
    SwitchGovernor gov(1, 3);
    auto stable = [] { return true; };
    auto unstable = [] { return false; };

    gov.recordEvent();
    EXPECT_FALSE(gov.poll(stable)); // 1 of 3
    gov.recordEvent();
    EXPECT_FALSE(gov.poll(stable)); // 2 of 3
    gov.recordEvent();
    EXPECT_FALSE(gov.poll(unstable)); // failed check resets the run
    EXPECT_EQ(gov.confirmations(), 0u);
    for (int i = 0; i < 2; ++i) {
        gov.recordEvent();
        EXPECT_FALSE(gov.poll(stable));
    }
    gov.recordEvent();
    EXPECT_TRUE(gov.poll(stable)); // 3 consecutive passes latch
}

TEST(SwitchGovernor, LatchIsOneWay)
{
    SwitchGovernor gov(1, 1);
    gov.recordEvent();
    ASSERT_TRUE(gov.poll([] { return true; }));
    // Once switched, the predicate is never consulted again.
    int calls = 0;
    EXPECT_TRUE(gov.poll([&] {
        ++calls;
        return false;
    }));
    EXPECT_EQ(calls, 0);
    EXPECT_TRUE(gov.switched());
}

TEST(SwitchGovernor, ResetUnlatches)
{
    SwitchGovernor gov(1, 1);
    gov.recordEvent();
    ASSERT_TRUE(gov.poll([] { return true; }));
    gov.reset();
    EXPECT_FALSE(gov.switched());
    EXPECT_EQ(gov.confirmations(), 0u);
    // The throttle restarts too: a poll right after reset is a no-op.
    EXPECT_FALSE(gov.poll([] { return true; }));
    gov.recordEvent();
    EXPECT_TRUE(gov.poll([] { return true; }));
}
