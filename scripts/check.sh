#!/usr/bin/env bash
# Full local gate: configure + build (warnings are errors), tier-1
# tests, and the photon_lint phase-safety/determinism/lockset/taint
# pass — the same checks CI runs on every push.
#
# Usage: scripts/check.sh [--lint-only] [builddir]
#   --lint-only   skip the test suite; build photon_lint and run the
#                 lint + lint-self targets only (fast pre-commit loop)
set -euo pipefail

cd "$(dirname "$0")/.."

LINT_ONLY=0
if [ "${1:-}" = "--lint-only" ]; then
    LINT_ONLY=1
    shift
fi
BUILD="${1:-build}"

cmake -B "$BUILD" -S . -DCMAKE_CXX_FLAGS=-Werror

if [ "$LINT_ONLY" = 1 ]; then
    cmake --build "$BUILD" -j --target photon_lint
    cmake --build "$BUILD" --target lint
    cmake --build "$BUILD" --target lint-self
    echo "check.sh: lint and lint-self green"
    exit 0
fi

cmake --build "$BUILD" -j
ctest --test-dir "$BUILD" --output-on-failure -j
cmake --build "$BUILD" --target lint
cmake --build "$BUILD" --target lint-self

echo "check.sh: build, tests and lint all green"
