// Waiver-binding fixture: a waiver written on its own comment line
// (line comment or block comment) binds to the next line that carries
// code, exactly like an end-of-line waiver on that line.
#include <cstdlib>

int waivedByPrecedingLineComment()
{
    // Reviewed: seeds a throwaway local fuzz buffer, never a result.
    // photon-lint: nondeterminism-ok
    return rand();
}

int waivedByBlockComment()
{
    /* Reviewed: wall-clock use is confined to log labels.
     * photon-lint: nondeterminism-ok
     */
    return rand();
}

int notWaived()
{
    return rand();
}

int waivedAcrossBlankLine()
{
    // photon-lint: nondeterminism-ok

    return rand();
}
