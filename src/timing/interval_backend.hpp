/**
 * @file
 * The interval timing backend: a fast analytical model that predicts a
 * kernel's execution time without running the cycle-level core. Every
 * warp is functionally executed once (the pre-decoded instruction
 * stream; stores apply to real simulated memory), but only the warps
 * of a static sample of CUs (one in four) are priced as they retire:
 * per-opcode latencies come from the sampling layer's interval-model
 * fits (paper Figure 9), memory instructions are classified hit/miss
 * by tag-only set-associative LRU proxies mirroring the detailed
 * L1/L2 geometry, and the remaining warps' durations are extrapolated
 * from the matching warp slot of their sample CU by instruction
 * count. Warps are packed onto the machine's wavefront slots through
 * the slot-occupancy scheduler model, and the resulting makespan is
 * floored by the machine's DRAM-line bandwidth, SIMD-issue and
 * MSHR-concurrency limits (sample counters rescaled to machine
 * equivalents). Per-kernel latency fits can be seeded from a detailed
 * phase (the auto-mode handoff), replacing configuration-derived
 * defaults with observed means.
 *
 * Results are deterministic (same job -> bit-identical cycles) but
 * deliberately NOT cycle-parity with the detailed core: there is no
 * event loop, no MSHR or bank contention and no inter-warp
 * interference beyond slot occupancy and the aggregate throughput
 * floors. BackendCaps reflects that — no monitor hooks, no epoch or
 * occupancy statistics (consumers report them as null, never zero).
 *
 * Layering: this header must stay free of src/sampling includes (the
 * CI hygiene grep pins every timing header); the interval-model reuse
 * lives behind the pimpl in interval_backend.cpp.
 */

#ifndef PHOTON_TIMING_INTERVAL_BACKEND_HPP
#define PHOTON_TIMING_INTERVAL_BACKEND_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/phase_annotations.hpp"
#include "timing/backend.hpp"

namespace photon::timing {

/** One opcode's aggregated latency observations, the transfer format
 *  for seeding interval fits from a detailed phase (kept free of
 *  sampling-layer types so it can cross the timing seam). */
struct LatencyObservation
{
    std::uint32_t opcode = 0; ///< isa::Opcode as its underlying value
    double latencySum = 0.0;  ///< sum of observed completion latencies
    std::uint64_t count = 0;  ///< observations behind that sum
};

/** The analytical interval backend (see file comment). */
class IntervalBackend final : public TimingBackend
{
  public:
    /** Shares @p gpu's clock and configuration; never runs its event
     *  core. */
    explicit IntervalBackend(Gpu &gpu);
    ~IntervalBackend() override;

    IntervalBackend(const IntervalBackend &) = delete;
    IntervalBackend &operator=(const IntervalBackend &) = delete;

    const char *name() const override { return "interval"; }

    BackendCaps
    caps() const override
    {
        // All flags false: analytical results only.
        return BackendCaps{};
    }

    /** Predict one kernel. @p monitor is ignored (no monitorHooks
     *  capability); of @p opts only splitBbAtWaitcnt is meaningful. */
    RunOutcome runKernel(const isa::Program &program,
                         const func::LaunchDims &dims,
                         func::GlobalMemory &mem,
                         KernelMonitor *monitor = nullptr,
                         const RunOptions &opts = {}) override;

    void skipTime(Cycle cycles) override;
    Cycle now() const override;
    const GpuConfig &config() const override;

    /** Export prediction statistics (kernels/warps/insts predicted,
     *  proxy hit/miss totals). Exported counters are user-visible
     *  results (determinism sink). */
    PHOTON_DET_SINK
    void exportStats(StatRegistry &stats) const override;

    /**
     * Seed @p kernel's latency table with observations aggregated
     * during a detailed phase (auto mode's handoff). Invalidates the
     * kernel's memoized per-opcode costs — predictions after a seed
     * reflect the merged fits.
     */
    void seedLatencies(const std::string &kernel,
                       const std::vector<LatencyObservation> &obs);

    /** One warp's predicted cost (duration never below 1 cycle). */
    struct WarpEstimate
    {
        Cycle duration = 1;
        std::uint64_t insts = 0;
    };

    /**
     * Predict a single warp of @p program under this backend's current
     * fits — the auto pilot's epilogue uses this to price the warps
     * the detailed phase never dispatched. Functionally executes the
     * warp (its stores apply to @p mem) unless @p replay supplies a
     * captured trace, in which case the warp's StepResult stream is
     * replayed bit-identically with no memory writes (the caller
     * already applied the trace's store log).
     */
    WarpEstimate estimateWarp(const isa::Program &program,
                              const func::LaunchDims &dims,
                              func::GlobalMemory &mem, WarpId warp,
                              bool split_bb_at_waitcnt = false,
                              const func::LaunchTrace *replay = nullptr);

  private:
    struct Impl;

    Gpu &gpu_;
    /** Per-kernel fits plus the L1/L2 tag proxies (deliberately warm
     *  across kernels, like the machine's caches). The store has a
     *  single owner (one backend per job); tagged anyway so any
     *  future cross-job sharing trips the phase checks instead of
     *  racing silently. */
    PHOTON_SHARED_STATE
    std::unique_ptr<Impl> impl_;
};

} // namespace photon::timing

#endif // PHOTON_TIMING_INTERVAL_BACKEND_HPP
