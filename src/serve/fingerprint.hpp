/**
 * @file
 * Request fingerprints for the daemon's admission dedup (ROADMAP:
 * "admission dedup by GPU-BBV fingerprint"). Two identities exist for a
 * simulation request:
 *
 *  - the *spec* fingerprint — a hash of the canonical job fields
 *    (workload/size/mode/gpu). Always available, used at admission for
 *    requests the server has never executed.
 *  - the *GPU-BBV* fingerprint — a hash over the GPU-BBV signatures the
 *    request's kernels actually produced (plus mode and GPU, since
 *    kernel records are micro-architecture specific). Learned after the
 *    first execution and registered with the global store; from then on
 *    admission keys on it, so two *differently spelled* requests whose
 *    kernels reduce to identical GPU BBVs collapse onto one in-flight
 *    run.
 *
 * All hashing is 64-bit FNV-1a over exact byte patterns; the online
 * analysis is deterministic, so identical launches hash identically
 * across processes and restarts.
 */

#ifndef PHOTON_SERVE_FINGERPRINT_HPP
#define PHOTON_SERVE_FINGERPRINT_HPP

#include <cstdint>
#include <string>

#include "sampling/gpu_bbv.hpp"
#include "sampling/photon.hpp"
#include "service/campaign.hpp"

namespace photon::serve {

/** 64-bit FNV-1a offset basis (the accumulator seed). */
inline constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ull;

/** Fold @p bytes into @p h (FNV-1a step). */
std::uint64_t fnv1a(std::uint64_t h, const void *bytes, std::size_t n);

/** Fold a string (length-prefixed, so "ab"+"c" != "a"+"bc"). */
std::uint64_t fnv1aString(std::uint64_t h, const std::string &s);

/** Hash one GPU-BBV signature (dims, clusters, exact vector bits). */
std::uint64_t fingerprintGpuBbv(const sampling::GpuBbv &signature);

/** Spec fingerprint: canonical job fields only. */
std::uint64_t fingerprintSpec(const service::JobSpec &spec);

/**
 * GPU-BBV fingerprint of one executed request: the per-launch GPU-BBV
 * hashes of its analysis store (sorted by launch key, so the unordered
 * container's iteration order cannot leak in), salted with mode + GPU.
 * Returns 0 when the store is empty (nothing to key on).
 */
std::uint64_t
fingerprintAnalyses(const sampling::PhotonSampler::AnalysisStore &analyses,
                    const std::string &mode, const std::string &gpu);

} // namespace photon::serve

#endif // PHOTON_SERVE_FINGERPRINT_HPP
