/**
 * @file
 * Concurrency-contract annotations for the two-phase parallel tick
 * protocol (see DESIGN.md §9) and for cross-thread service state.
 *
 * The macros expand to nothing for the compiler; they are contract
 * *markers* consumed by `tools/photon_lint`, which statically checks
 * that no shared-state write is reachable from any front-phase
 * function. The vocabulary:
 *
 *  - PHOTON_PHASE_FRONT   — the function may run concurrently with
 *    other CUs' (or jobs') front halves. Its whole call closure must
 *    touch only CU-private (job-private) state.
 *  - PHOTON_PHASE_COMMIT  — serial-only half of the two-phase
 *    protocol. Calling it from a front-phase closure is a violation
 *    unless the call site carries a `// photon-lint: serial-only`
 *    waiver (used where one function body serves both modes).
 *  - PHOTON_SHARED_STATE  — a field or method backing state shared
 *    across CUs/threads (L1I/L1K/L2/DRAM, monitor sinks, dispatcher
 *    bookkeeping). A write to a tagged field, or a call to a tagged
 *    method, from a front-phase closure is a violation.
 *  - PHOTON_PHASE_EXEMPT  — internally synchronized (owns a mutex);
 *    callable from any phase. The linter treats it as opaque-safe.
 *
 * The static pass is paired with a runtime guard: in checked builds
 * (PHOTON_PHASE_CHECKS, default on unless NDEBUG and not overridden
 * by the build system), PHOTON_PHASE_FRONT_SCOPE() marks the calling
 * thread as executing a front half, and PHOTON_ASSERT_PHASE(what)
 * panics when a tagged shared path is entered from such a thread.
 * The guard is thread-local, so independent campaign jobs running
 * their own serial commits are not flagged by another job's front
 * window.
 */

#ifndef PHOTON_SIM_PHASE_ANNOTATIONS_HPP
#define PHOTON_SIM_PHASE_ANNOTATIONS_HPP

#include "sim/log.hpp"

#define PHOTON_PHASE_FRONT
#define PHOTON_PHASE_COMMIT
#define PHOTON_SHARED_STATE
#define PHOTON_PHASE_EXEMPT

#ifndef PHOTON_PHASE_CHECKS
#ifdef NDEBUG
#define PHOTON_PHASE_CHECKS 0
#else
#define PHOTON_PHASE_CHECKS 1
#endif
#endif

#if PHOTON_PHASE_CHECKS

namespace photon::phase {

namespace detail {
/** Depth of nested front-phase scopes on this thread. */
inline thread_local int t_front_depth = 0;
} // namespace detail

/** True while the calling thread executes a front half. */
inline bool
inFrontPhase()
{
    return detail::t_front_depth > 0;
}

/** RAII marker placed at the top of front-phase entry points. */
class FrontScope
{
  public:
    FrontScope() { ++detail::t_front_depth; }
    ~FrontScope() { --detail::t_front_depth; }
    FrontScope(const FrontScope &) = delete;
    FrontScope &operator=(const FrontScope &) = delete;
};

} // namespace photon::phase

#define PHOTON_PHASE_CONCAT2(a, b) a##b
#define PHOTON_PHASE_CONCAT(a, b) PHOTON_PHASE_CONCAT2(a, b)

/** Mark the calling thread as front-phase for the enclosing scope. */
#define PHOTON_PHASE_FRONT_SCOPE()                                          \
    ::photon::phase::FrontScope PHOTON_PHASE_CONCAT(photon_front_scope_,    \
                                                    __LINE__) {}

/** Panic when a shared-state path is entered from a front half. */
#define PHOTON_ASSERT_PHASE(what)                                           \
    do {                                                                    \
        if (::photon::phase::inFrontPhase()) {                              \
            ::photon::panic("phase violation: ", what,                      \
                            " entered from a front-phase thread");          \
        }                                                                   \
    } while (0)

#else // !PHOTON_PHASE_CHECKS

#define PHOTON_PHASE_FRONT_SCOPE() ((void)0)
#define PHOTON_ASSERT_PHASE(what) ((void)0)

#endif // PHOTON_PHASE_CHECKS

#endif // PHOTON_SIM_PHASE_ANNOTATIONS_HPP
