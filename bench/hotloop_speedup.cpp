/**
 * @file
 * Hot-loop speedup: wall time of detailed-mode simulation under the
 * three run-loop variants — the reference per-cycle scanning loop
 * (seed), the event-driven core (event), and the event core with
 * parallel CU ticking (threads) — on a compute-bound workload (mm) and
 * a memory-bound one (spmv). Every variant must report identical cycle
 * and instruction counts (the loops are bit-identical by construction;
 * this bench re-checks it); only wall time may differ.
 *
 * Writes BENCH_hotloop.json next to the working directory for the CI
 * perf-smoke artifact. Threaded speedup requires as many hardware cores
 * as worker threads; the JSON records hardware_concurrency so a
 * single-core CI runner's numbers are interpretable.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "driver/report.hpp"
#include "sampling/telemetry.hpp"
#include "timing/gpu.hpp"

using namespace photon;

namespace {

struct VariantResult
{
    std::string workload;
    std::string variant;
    std::uint32_t threads = 1;
    Cycle cycles = 0;
    std::uint64_t insts = 0;
    double wallSeconds = 0.0;
    double speedupVsSeed = 0.0;
};

/**
 * Run every launch of a fresh workload instance through Gpu::runKernel
 * directly (bypassing the sampler layer) so the run-loop variant can be
 * selected per run. Wall time covers only the detailed simulation, not
 * setup.
 */
VariantResult
runVariantOnce(const std::string &name,
               const bench::WorkloadFactory &factory,
               const std::string &variant, bool seed_loop,
               std::uint32_t threads)
{
    driver::Platform platform(GpuConfig::r9Nano(),
                              driver::SimMode::FullDetailed);
    workloads::WorkloadPtr w = factory();
    w->setup(platform);

    timing::RunOptions opts;
    opts.useSeedLoop = seed_loop;
    opts.cuThreads = threads;

    VariantResult r;
    r.workload = name;
    r.variant = variant;
    r.threads = threads;
    auto t0 = std::chrono::steady_clock::now();
    for (const workloads::LaunchSpec &l : w->launches()) {
        func::LaunchDims dims{l.numWorkgroups, l.wavesPerWorkgroup,
                              l.kernarg};
        timing::RunOutcome out = platform.gpu().runKernel(
            *l.program, dims, platform.mem(), nullptr, opts);
        r.cycles += out.cycles();
        r.insts += out.instsIssued;
    }
    auto t1 = std::chrono::steady_clock::now();
    r.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
    return r;
}

/** Fold one repetition into the best-of-N result. A wall-clock bench on
 *  a shared machine measures min(noise + cost); the minimum over reps
 *  is the closest estimate of cost. */
void
foldBest(VariantResult &best, const VariantResult &r, bool first)
{
    if (first || r.wallSeconds < best.wallSeconds)
        best = r;
}

void
writeJson(const std::vector<VariantResult> &rows, const char *path)
{
    std::ofstream f(path);
    if (!f) {
        std::fprintf(stderr, "cannot open %s\n", path);
        return;
    }
    f << "{\n  \"bench\": \"hotloop_speedup\",\n"
      << "  \"telemetry_schema_version\": "
      << sampling::kTelemetrySchemaVersion << ",\n"
      << "  \"hardware_concurrency\": "
      << std::thread::hardware_concurrency() << ",\n  \"runs\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const VariantResult &r = rows[i];
        f << "    {\"workload\": \"" << r.workload << "\", \"variant\": \""
          << r.variant << "\", \"threads\": " << r.threads
          << ", \"cycles\": " << r.cycles << ", \"insts\": " << r.insts
          << ", \"wall_s\": " << r.wallSeconds << ", \"cycles_per_sec\": "
          << (r.wallSeconds > 0 ? static_cast<double>(r.cycles) /
                                      r.wallSeconds
                                : 0.0)
          << ", \"speedup_vs_seed\": " << r.speedupVsSeed << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    f << "  ]\n}\n";
    std::printf("wrote %s\n", path);
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = bench::quickMode(argc, argv);
    const std::uint32_t mm_n = quick ? 128 : 256;
    const std::uint32_t spmv_rows = quick ? 1024 : 4096;
    const std::uint32_t par_threads = 4;
    const std::uint32_t reps = quick ? 2 : 3;

    const struct
    {
        const char *name;
        bench::WorkloadFactory factory;
    } workloads_under_test[] = {
        {"mm", [&] { return workloads::makeMm(mm_n); }},
        {"spmv", [&] { return workloads::makeSpmv(spmv_rows); }},
    };

    driver::printBanner(std::cout,
                        "Detailed-mode hot-loop speedup (r9nano)");
    std::printf("mm n=%u, spmv rows=%u; %u hardware cores\n\n", mm_n,
                spmv_rows, std::thread::hardware_concurrency());

    std::vector<VariantResult> rows;
    driver::Table table({"workload", "variant", "threads", "cycles",
                         "wall_s", "Mcyc/s", "speedup"});
    for (const auto &wt : workloads_under_test) {
        VariantResult seed, event, par;
        // Interleave the variants within each repetition so background
        // load on the host biases none of them.
        for (std::uint32_t i = 0; i < reps; ++i) {
            foldBest(seed,
                     runVariantOnce(wt.name, wt.factory, "seed", true, 1),
                     i == 0);
            foldBest(event,
                     runVariantOnce(wt.name, wt.factory, "event", false,
                                    1),
                     i == 0);
            foldBest(par,
                     runVariantOnce(wt.name, wt.factory, "threads",
                                    false, par_threads),
                     i == 0);
        }
        seed.speedupVsSeed = 1.0;
        event.speedupVsSeed = seed.wallSeconds / event.wallSeconds;
        par.speedupVsSeed = seed.wallSeconds / par.wallSeconds;
        for (const VariantResult *r : {&seed, &event, &par}) {
            if (r->cycles != seed.cycles || r->insts != seed.insts) {
                std::fprintf(stderr,
                             "FAIL: %s/%s diverged from the seed loop "
                             "(%llu vs %llu cycles)\n",
                             r->workload.c_str(), r->variant.c_str(),
                             static_cast<unsigned long long>(r->cycles),
                             static_cast<unsigned long long>(
                                 seed.cycles));
                return 1;
            }
            table.addRow({r->workload, r->variant,
                          std::to_string(r->threads),
                          std::to_string(r->cycles),
                          driver::Table::num(r->wallSeconds, 3),
                          driver::Table::num(r->cycles / r->wallSeconds /
                                             1e6),
                          driver::Table::num(r->speedupVsSeed)});
            rows.push_back(*r);
        }
    }
    table.print(std::cout);
    std::printf(
        "\nevent vs seed is the structural win (no per-cycle CU scan);\n"
        "the threads variant needs >= %u real cores to pay off.\n",
        par_threads);

    writeJson(rows, "BENCH_hotloop.json");
    return 0;
}
