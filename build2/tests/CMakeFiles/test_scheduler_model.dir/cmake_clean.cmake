file(REMOVE_RECURSE
  "CMakeFiles/test_scheduler_model.dir/test_scheduler_model.cpp.o"
  "CMakeFiles/test_scheduler_model.dir/test_scheduler_model.cpp.o.d"
  "test_scheduler_model"
  "test_scheduler_model.pdb"
  "test_scheduler_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scheduler_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
