/**
 * @file
 * Paper Figure 11: the warp-type distribution from a 1% sample matches
 * the all-warp distribution — a dominant type in SC, none in SpMV —
 * which is how warp-sampling arms itself cheaply.
 */

#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "isa/basic_block.hpp"
#include "sampling/analysis.hpp"

using namespace photon;
using namespace photon::bench;

namespace {

void
report(const char *name, const workloads::WorkloadPtr &w)
{
    driver::Platform platform(GpuConfig::r9Nano(),
                              driver::SimMode::FullDetailed);
    w->setup(platform);
    const auto &spec = w->launches()[0];
    func::LaunchDims dims{spec.numWorkgroups, spec.wavesPerWorkgroup,
                          spec.kernarg};
    isa::BasicBlockTable bbs(*spec.program);

    SamplingConfig sampled_cfg;
    sampling::OnlineAnalysis sampled = sampling::analyzeKernel(
        *spec.program, bbs, dims, platform.mem(), sampled_cfg);
    SamplingConfig full_cfg;
    full_cfg.onlineSampleRate = 1.0;
    sampling::OnlineAnalysis full = sampling::analyzeKernel(
        *spec.program, bbs, dims, platform.mem(), full_cfg);

    driver::printBanner(std::cout,
                        std::string("Figure 11: warp types, ") + name);
    driver::Table t({"", "all warps", "1% sample"});
    t.addRow({"warp types", std::to_string(full.classifier.numTypes()),
              std::to_string(sampled.classifier.numTypes())});
    t.addRow({"dominant type share %",
              driver::Table::num(100 * full.dominantRate, 1),
              driver::Table::num(100 * sampled.dominantRate, 1)});
    t.print(std::cout);

    // Top five types by population, both views.
    auto top = [](const sampling::WarpClassifier &c) {
        std::vector<double> shares;
        for (const auto &type : c.types()) {
            shares.push_back(100.0 * static_cast<double>(type.numWarps) /
                             static_cast<double>(c.totalWarps()));
        }
        std::sort(shares.rbegin(), shares.rend());
        shares.resize(std::min<std::size_t>(5, shares.size()));
        return shares;
    };
    auto full_top = top(full.classifier);
    auto sample_top = top(sampled.classifier);
    driver::Table d({"rank", "all warps %", "1% sample %"});
    for (std::size_t i = 0;
         i < std::max(full_top.size(), sample_top.size()); ++i) {
        d.addRow({std::to_string(i + 1),
                  i < full_top.size()
                      ? driver::Table::num(full_top[i], 1)
                      : "-",
                  i < sample_top.size()
                      ? driver::Table::num(sample_top[i], 1)
                      : "-"});
    }
    d.print(std::cout);
    std::cout << "=> warp-sampling "
              << (sampled.dominantRate >= 0.95 ? "armed" : "disabled")
              << " for " << name << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = quickMode(argc, argv);
    report("SC (regular, Fig. 11 left)",
           workloads::makeSc(quick ? 4096 : 8192));
    report("SpMV (irregular, Fig. 11 right)",
           workloads::makeSpmv((quick ? 1024 : 2048) * 64));
    return 0;
}
