/**
 * @file
 * Paper Figure 3 (Observation 3): relationship between the issue and
 * retired times of the dominating basic block in MM and SpMV, with the
 * least-squares fit the paper reports (Retired = a * Issue + b).
 */

#include <iostream>

#include "obs_util.hpp"
#include "sampling/least_squares.hpp"

using namespace photon;
using namespace photon::bench;

namespace {

void
report(const char *name, const workloads::WorkloadPtr &w)
{
    driver::Platform platform(GpuConfig::r9Nano(),
                              driver::SimMode::FullDetailed);
    ObservationProbe probe;
    observeKernel(w, platform, probe);
    std::uint32_t slot = probe.dominatingSlot();
    const auto &evs = probe.bbEvents.at(slot);

    std::vector<double> x, y;
    x.reserve(evs.size());
    y.reserve(evs.size());
    for (const TimedEvent &e : evs) {
        x.push_back(static_cast<double>(e.issue));
        y.push_back(static_cast<double>(e.retire));
    }
    sampling::LineFit fit = sampling::leastSquares(x, y);

    driver::printBanner(std::cout,
                        std::string("Figure 3: issue vs retired, ") +
                            name);
    std::cout << "dominating slot " << slot << ", executions "
              << evs.size() << "\n";
    std::cout << "least-squares: Retired = "
              << driver::Table::num(fit.a, 3) << " * Issue + "
              << driver::Table::num(fit.b, 1) << "\n";
    std::cout << "(the paper observes a ~ 1.0 over full executions: "
              << (std::abs(fit.a - 1.0) < 0.1 ? "reproduced"
                                              : "see EXPERIMENTS.md")
              << ")\n";

    // A sample of (issue, retire) points for plotting.
    std::cout << "issue,retired\n";
    std::size_t step = std::max<std::size_t>(1, evs.size() / 24);
    for (std::size_t i = 0; i < evs.size(); i += step)
        std::cout << evs[i].issue << "," << evs[i].retire << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = quickMode(argc, argv);
    report("MM (regular, Fig. 3a)", workloads::makeMm(quick ? 256 : 512));
    report("SpMV (irregular, Fig. 3b)",
           workloads::makeSpmv((quick ? 1024 : 2048) * 64));
    return 0;
}
