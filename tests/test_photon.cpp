/** @file End-to-end tests of the Photon orchestrator and PKA baseline. */

#include <gtest/gtest.h>

#include "driver/platform.hpp"
#include "workloads/workload.hpp"

using namespace photon;

namespace {

Cycle
fullCycles(const workloads::WorkloadPtr &w)
{
    driver::Platform p(GpuConfig::r9Nano(), driver::SimMode::FullDetailed);
    w->setup(p);
    workloads::runWorkload(*w, p);
    return p.totalKernelCycles();
}

} // namespace

TEST(Photon, FullFallbackMatchesDetailedExactly)
{
    // A kernel too small for any level to engage must reproduce the
    // detailed result bit-for-bit.
    Cycle full = fullCycles(workloads::makeRelu(256));
    driver::Platform p(GpuConfig::r9Nano(), driver::SimMode::Photon);
    auto w = workloads::makeRelu(256);
    w->setup(p);
    auto rs = workloads::runWorkload(*w, p);
    EXPECT_EQ(rs[0].sample.level, sampling::SampleLevel::Full);
    EXPECT_EQ(p.totalKernelCycles(), full);
}

TEST(Photon, WarpSamplingEngagesAndStaysAccurate)
{
    Cycle full = fullCycles(workloads::makeRelu(16384));
    driver::Platform p(GpuConfig::r9Nano(), driver::SimMode::Photon);
    auto w = workloads::makeRelu(16384);
    w->setup(p);
    auto rs = workloads::runWorkload(*w, p);
    EXPECT_EQ(rs[0].sample.level, sampling::SampleLevel::Warp);
    EXPECT_LT(rs[0].sample.telemetry.detailedFraction(), 0.8);
    // The control plane filled the decision half of the record.
    EXPECT_EQ(rs[0].sample.telemetry.level, sampling::SampleLevel::Warp);
    EXPECT_GT(rs[0].sample.telemetry.switchCycle, 0u);
    EXPECT_TRUE(rs[0].sample.telemetry.warpDetector.stable);
    double err = std::abs(static_cast<double>(p.totalKernelCycles()) -
                          static_cast<double>(full)) /
                 static_cast<double>(full);
    EXPECT_LT(err, 0.10);
}

TEST(Photon, KernelSamplingSkipsRepeatedLaunches)
{
    driver::Platform p(GpuConfig::r9Nano(), driver::SimMode::Photon);
    auto w = workloads::makePagerank(16384, 4);
    w->setup(p);
    auto rs = workloads::runWorkload(*w, p);
    // Iterations beyond the first must hit the kernel cache.
    int kernel_hits = 0;
    for (const auto &r : rs)
        kernel_hits += r.sample.level == sampling::SampleLevel::Kernel;
    EXPECT_GE(kernel_hits, 4);
    EXPECT_GE(p.photon()->cache().size(), 2u);
}

TEST(Photon, LevelDisablingIsRespected)
{
    SamplingConfig cfg;
    cfg.enableKernelSampling = false;
    cfg.enableWarpSampling = false;
    cfg.enableBbSampling = false;
    driver::Platform p(GpuConfig::r9Nano(), driver::SimMode::Photon, cfg);
    auto w = workloads::makePagerank(16384, 3);
    w->setup(p);
    auto rs = workloads::runWorkload(*w, p);
    for (const auto &r : rs)
        EXPECT_EQ(r.sample.level, sampling::SampleLevel::Full);
}

TEST(Photon, OfflineAnalysisReuseKeepsPredictions)
{
    auto factory = [] { return workloads::makeRelu(8192); };
    driver::Platform online(GpuConfig::r9Nano(), driver::SimMode::Photon);
    auto w1 = factory();
    w1->setup(online);
    workloads::runWorkload(*w1, online);

    driver::Platform offline(GpuConfig::r9Nano(),
                             driver::SimMode::Photon);
    offline.photon()->importAnalysisStore(
        online.photon()->analysisStore());
    auto w2 = factory();
    w2->setup(offline);
    auto rs = workloads::runWorkload(*w2, offline);
    EXPECT_EQ(rs[0].sample.telemetry.analysisInsts, 0u); // reused
    EXPECT_TRUE(rs[0].sample.telemetry.analysisReused);
    double rel = std::abs(static_cast<double>(
                              offline.totalKernelCycles()) -
                          static_cast<double>(online.totalKernelCycles())) /
                 static_cast<double>(online.totalKernelCycles());
    EXPECT_LT(rel, 0.05);
}

TEST(Photon, PredictedInstsTrackDetailedInsts)
{
    Cycle ignored = fullCycles(workloads::makeRelu(16384));
    (void)ignored;
    driver::Platform full(GpuConfig::r9Nano(),
                          driver::SimMode::FullDetailed);
    auto wf = workloads::makeRelu(16384);
    wf->setup(full);
    workloads::runWorkload(*wf, full);

    driver::Platform p(GpuConfig::r9Nano(), driver::SimMode::Photon);
    auto w = workloads::makeRelu(16384);
    w->setup(p);
    workloads::runWorkload(*w, p);
    double rel = std::abs(static_cast<double>(p.totalInsts()) -
                          static_cast<double>(full.totalInsts())) /
                 static_cast<double>(full.totalInsts());
    EXPECT_LT(rel, 0.02);
}

TEST(Photon, WaitcntSplittingStillAccurate)
{
    // The future-work block definition must not break the pipeline.
    Cycle full = fullCycles(workloads::makeRelu(8192));
    SamplingConfig cfg;
    cfg.bbSplitAtWaitcnt = true;
    driver::Platform p(GpuConfig::r9Nano(), driver::SimMode::Photon, cfg);
    auto w = workloads::makeRelu(8192);
    w->setup(p);
    workloads::runWorkload(*w, p);
    double err = std::abs(static_cast<double>(p.totalKernelCycles()) -
                          static_cast<double>(full)) /
                 static_cast<double>(full);
    EXPECT_LT(err, 0.15);
}

TEST(Pka, RunsAndExtrapolates)
{
    Cycle full = fullCycles(workloads::makeRelu(16384));
    driver::Platform p(GpuConfig::r9Nano(), driver::SimMode::Pka);
    auto w = workloads::makeRelu(16384);
    w->setup(p);
    auto rs = workloads::runWorkload(*w, p);
    EXPECT_GT(p.totalKernelCycles(), 0u);
    // PKA truncates once IPC variance settles.
    EXPECT_NE(rs[0].sample.level, sampling::SampleLevel::Kernel);
    // Sanity bound: within a factor of 2 of the detailed result.
    EXPECT_LT(p.totalKernelCycles(), 2 * full);
    EXPECT_GT(p.totalKernelCycles(), full / 2);
}

TEST(Pka, PrincipalKernelSelectionReusesFirstInstance)
{
    driver::Platform p(GpuConfig::r9Nano(), driver::SimMode::Pka);
    auto w = workloads::makePagerank(16384, 3);
    w->setup(p);
    auto rs = workloads::runWorkload(*w, p);
    int reused = 0;
    for (const auto &r : rs)
        reused += r.sample.level == sampling::SampleLevel::Kernel;
    EXPECT_GE(reused, 4); // iterations 2..3, both kernels
}
