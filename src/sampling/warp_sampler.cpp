#include "sampling/warp_sampler.hpp"

namespace photon::sampling {

WarpSampler::WarpSampler(const OnlineAnalysis &analysis,
                         const SamplingConfig &cfg)
    : cfg_(cfg), armed_(analysis.dominantRate >= cfg.dominantWarpRate),
      detector_(cfg.warpWindow, cfg.delta),
      checkInterval_(cfg.warpWindow / 8)
{}

void
WarpSampler::onWaveDispatched(WarpId warp, Cycle now)
{
    if (!armed_)
        return;
    dispatchTime_.emplace(warp, now);
}

void
WarpSampler::onWaveRetired(WarpId warp, Cycle now)
{
    if (!armed_)
        return;
    auto it = dispatchTime_.find(warp);
    if (it == dispatchTime_.end())
        return;
    detector_.addPoint(static_cast<double>(it->second),
                       static_cast<double>(now));
    dispatchTime_.erase(it);
    ++eventsSinceCheck_;
}

bool
WarpSampler::wantsSwitch()
{
    if (switched_)
        return true;
    if (!armed_ || eventsSinceCheck_ < checkInterval_)
        return false;
    eventsSinceCheck_ = 0;
    // Same persistence guard as basic-block-sampling.
    if (detector_.stable()) {
        if (++confirmations_ >= cfg_.confirmChecks)
            switched_ = true;
    } else {
        confirmations_ = 0;
    }
    return switched_;
}

} // namespace photon::sampling
