file(REMOVE_RECURSE
  "CMakeFiles/test_photon_lint.dir/test_photon_lint.cpp.o"
  "CMakeFiles/test_photon_lint.dir/test_photon_lint.cpp.o.d"
  "test_photon_lint"
  "test_photon_lint.pdb"
  "test_photon_lint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_photon_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
