/**
 * @file
 * Compute unit (CU) timing model: 4 SIMD units, wavefront slots, in-order
 * per-wavefront issue with round-robin arbitration, blocking vector memory
 * (latency hidden by switching among resident wavefronts), workgroup
 * barriers and an instruction-fetch path through the L1I.
 */

#ifndef PHOTON_TIMING_CU_HPP
#define PHOTON_TIMING_CU_HPP

#include <cstdint>
#include <vector>

#include "func/emulator.hpp"
#include "func/wave_state.hpp"
#include "isa/basic_block.hpp"
#include "sim/config.hpp"
#include "sim/types.hpp"
#include "timing/memsys.hpp"
#include "timing/monitor.hpp"

namespace photon::timing {

/** Everything shared by all CUs for one kernel launch. */
struct KernelContext
{
    const isa::Program *program = nullptr;
    const isa::BasicBlockTable *bbTable = nullptr;
    const func::LaunchDims *dims = nullptr;
    func::GlobalMemory *mem = nullptr;
    KernelMonitor *monitor = nullptr; ///< may be null
    /** Virtual base address of the kernel's code (for L1I tags). */
    Addr codeBase = 1ull << 40;
};

/** One GCN-style compute unit. */
class ComputeUnit
{
  public:
    ComputeUnit(const GpuConfig &cfg, std::uint32_t cuId,
                MemorySystem &memsys, const func::Emulator &emu);

    /** Reset per-kernel state and bind the launch context. */
    void startKernel(const KernelContext &ctx);

    /** True when a workgroup of the bound kernel fits right now. */
    bool canAcceptWorkgroup() const;

    /** Place workgroup @p wg; requires canAcceptWorkgroup(). */
    void placeWorkgroup(WorkgroupId wg, Cycle now);

    /**
     * Let every SIMD try to issue one instruction at cycle @p now.
     * @return number of instructions issued.
     */
    std::uint32_t tick(Cycle now);

    /** Earliest cycle at which any resident wavefront can issue;
     *  kNoCycle when the CU is empty or fully barrier-blocked. */
    Cycle nextEventAt() const;

    /** Cheap lower bound on nextEventAt(), maintained incrementally.
     *  The run loop skips the CU while the hint is in the future and
     *  refreshes it (refreshHint) after an idle tick. */
    Cycle nextHint() const { return nextHint_; }
    void refreshHint() { nextHint_ = nextEventAt(); }

    /** No resident wavefronts. */
    bool idle() const { return residentWaves_ == 0; }

    std::uint32_t residentWaves() const { return residentWaves_; }
    std::uint64_t instsIssued() const { return instsIssued_; }
    std::uint32_t wavesRetired() const { return wavesRetired_; }

  private:
    struct Wave
    {
        func::WaveState ws;
        Cycle readyAt = 0;
        bool active = false;
        bool atBarrier = false;
        std::uint64_t instCount = 0;
        std::uint32_t wgSlot = 0;
        std::uint64_t lastFetchLine = ~std::uint64_t{0};
        // Dynamic basic-block tracking.
        bool bbValid = false;
        isa::BbId curBb = isa::kNoBb;
        Cycle curBbIssue = 0;
        std::uint32_t curBbLanes = 0;
    };

    struct Workgroup
    {
        WorkgroupId id = 0;
        std::uint32_t wavesLeft = 0;
        std::uint32_t barrierWaiting = 0;
        std::vector<std::uint8_t> lds;
        bool active = false;
    };

    /** Issue the next instruction of wavefront slot @p slot at @p now. */
    void issueWave(std::uint32_t slot, Cycle now);
    void retireWave(std::uint32_t slot, Cycle now);
    void releaseBarrier(std::uint32_t wgSlot, Cycle now);

    const GpuConfig &cfg_;
    std::uint32_t cuId_;
    MemorySystem &memsys_;
    const func::Emulator &emu_;
    KernelContext ctx_;

    std::vector<Wave> waves_;        ///< simdsPerCu * wavesPerSimd slots
    /** Compact per-slot scheduling key: the cycle the slot's wavefront
     *  can next issue, or kNoCycle when empty / at a barrier. Stored
     *  SIMD-major (simd * wavesPerSimd + k for slot = simd + k * simds)
     *  so one SIMD's scan touches contiguous memory. */
    std::vector<Cycle> slotReady_;

    /** Index of slot's scheduling key in slotReady_. */
    std::uint32_t
    readyIndex(std::uint32_t slot) const
    {
        return (slot % cfg_.simdsPerCu) * cfg_.wavesPerSimd +
               slot / cfg_.simdsPerCu;
    }
    std::vector<Workgroup> wgs_;     ///< workgroupsPerCu slots
    std::vector<Cycle> simdFree_;    ///< per-SIMD issue-port availability
    std::vector<std::uint32_t> rr_;  ///< per-SIMD round-robin pointer
    Cycle nextHint_ = kNoCycle;
    std::uint32_t residentWaves_ = 0;
    std::uint32_t residentWgs_ = 0;
    std::uint64_t instsIssued_ = 0;
    std::uint32_t wavesRetired_ = 0;
    func::StepResult step_;          ///< reused per issue
};

} // namespace photon::timing

#endif // PHOTON_TIMING_CU_HPP
