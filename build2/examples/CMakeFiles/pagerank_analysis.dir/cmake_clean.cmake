file(REMOVE_RECURSE
  "CMakeFiles/pagerank_analysis.dir/pagerank_analysis.cpp.o"
  "CMakeFiles/pagerank_analysis.dir/pagerank_analysis.cpp.o.d"
  "pagerank_analysis"
  "pagerank_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pagerank_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
