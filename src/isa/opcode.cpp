#include "isa/opcode.hpp"

#include <array>

#include "sim/log.hpp"

namespace photon::isa {

namespace {

constexpr OpcodeInfo
op(std::string_view name, FuncUnit unit, bool is_branch = false,
   bool ends_bb = false)
{
    return OpcodeInfo{name, unit, is_branch, ends_bb};
}

// Indexed by Opcode; keep in the exact enum order.
const std::array<OpcodeInfo, kNumOpcodes> kTable = {{
    op("s_mov_b32", FuncUnit::SALU),
    op("s_add_u32", FuncUnit::SALU),
    op("s_sub_u32", FuncUnit::SALU),
    op("s_mul_u32", FuncUnit::SALU),
    op("s_lshl_b32", FuncUnit::SALU),
    op("s_lshr_b32", FuncUnit::SALU),
    op("s_and_b32", FuncUnit::SALU),
    op("s_or_b32", FuncUnit::SALU),
    op("s_xor_b32", FuncUnit::SALU),
    op("s_min_u32", FuncUnit::SALU),
    op("s_max_u32", FuncUnit::SALU),
    op("s_cmp_lt_u32", FuncUnit::SALU),
    op("s_cmp_le_u32", FuncUnit::SALU),
    op("s_cmp_gt_u32", FuncUnit::SALU),
    op("s_cmp_ge_u32", FuncUnit::SALU),
    op("s_cmp_eq_u32", FuncUnit::SALU),
    op("s_cmp_ne_u32", FuncUnit::SALU),

    op("s_mov_mask", FuncUnit::SALU),
    op("s_and_mask", FuncUnit::SALU),
    op("s_or_mask", FuncUnit::SALU),
    op("s_andn2_mask", FuncUnit::SALU),

    op("s_branch", FuncUnit::BRANCH, true, true),
    op("s_cbranch_scc0", FuncUnit::BRANCH, true, true),
    op("s_cbranch_scc1", FuncUnit::BRANCH, true, true),
    op("s_cbranch_vccz", FuncUnit::BRANCH, true, true),
    op("s_cbranch_vccnz", FuncUnit::BRANCH, true, true),
    op("s_cbranch_execz", FuncUnit::BRANCH, true, true),
    op("s_cbranch_execnz", FuncUnit::BRANCH, true, true),
    op("s_barrier", FuncUnit::SYNC, false, true),
    op("s_waitcnt", FuncUnit::SYNC),
    op("s_nop", FuncUnit::SALU),
    op("s_endpgm", FuncUnit::SYNC, false, true),

    op("s_load_dword", FuncUnit::SMEM),

    op("v_mov_b32", FuncUnit::VALU),
    op("v_add_u32", FuncUnit::VALU),
    op("v_sub_u32", FuncUnit::VALU),
    op("v_mul_lo_u32", FuncUnit::VALU),
    op("v_mad_u32", FuncUnit::VALU),
    op("v_lshl_b32", FuncUnit::VALU),
    op("v_lshr_b32", FuncUnit::VALU),
    op("v_ashr_i32", FuncUnit::VALU),
    op("v_and_b32", FuncUnit::VALU),
    op("v_or_b32", FuncUnit::VALU),
    op("v_xor_b32", FuncUnit::VALU),
    op("v_add_f32", FuncUnit::VALU),
    op("v_sub_f32", FuncUnit::VALU),
    op("v_mul_f32", FuncUnit::VALU),
    op("v_mac_f32", FuncUnit::VALU),
    op("v_fma_f32", FuncUnit::VALU),
    op("v_max_f32", FuncUnit::VALU),
    op("v_min_f32", FuncUnit::VALU),
    op("v_max_u32", FuncUnit::VALU),
    op("v_min_u32", FuncUnit::VALU),
    op("v_rcp_f32", FuncUnit::VALU4),
    op("v_sqrt_f32", FuncUnit::VALU4),
    op("v_cvt_f32_u32", FuncUnit::VALU),
    op("v_cvt_f32_i32", FuncUnit::VALU),
    op("v_cvt_u32_f32", FuncUnit::VALU),
    op("v_cmp_lt_u32", FuncUnit::VALU),
    op("v_cmp_ge_u32", FuncUnit::VALU),
    op("v_cmp_eq_u32", FuncUnit::VALU),
    op("v_cmp_ne_u32", FuncUnit::VALU),
    op("v_cmp_lt_i32", FuncUnit::VALU),
    op("v_cmp_ge_i32", FuncUnit::VALU),
    op("v_cmp_lt_f32", FuncUnit::VALU),
    op("v_cmp_gt_f32", FuncUnit::VALU),
    op("v_cmp_ge_f32", FuncUnit::VALU),
    op("v_cndmask_b32", FuncUnit::VALU),

    op("flat_load_dword", FuncUnit::VMEM),
    op("flat_store_dword", FuncUnit::VMEM),

    op("ds_read_b32", FuncUnit::LDS),
    op("ds_write_b32", FuncUnit::LDS),
}};

} // namespace

const OpcodeInfo &
opcodeInfo(Opcode op)
{
    auto idx = static_cast<unsigned>(op);
    PHOTON_ASSERT(idx < kNumOpcodes, "opcode out of range: ", idx);
    return kTable[idx];
}

} // namespace photon::isa
