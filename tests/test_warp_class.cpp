/** @file Tests for warp-type classification. */

#include <gtest/gtest.h>

#include "sampling/warp_class.hpp"

using namespace photon::sampling;

namespace {

Bbv
makeBbv(std::initializer_list<std::pair<photon::isa::BbId,
                                        std::uint64_t>> entries)
{
    Bbv v(8);
    for (auto [bb, n] : entries)
        v.add(bb, 64, n);
    return v;
}

} // namespace

TEST(WarpClassifier, SameBbvSameType)
{
    WarpClassifier c;
    auto t1 = c.classify(makeBbv({{0, 1}, {1, 5}}), 100);
    auto t2 = c.classify(makeBbv({{0, 1}, {1, 5}}), 100);
    EXPECT_EQ(t1, t2);
    EXPECT_EQ(c.numTypes(), 1u);
    EXPECT_EQ(c.totalWarps(), 2u);
    EXPECT_EQ(c.types()[t1].numWarps, 2u);
}

TEST(WarpClassifier, DifferentBbvDifferentType)
{
    WarpClassifier c;
    auto t1 = c.classify(makeBbv({{0, 1}, {1, 5}}), 100);
    auto t2 = c.classify(makeBbv({{0, 1}, {1, 6}}), 110);
    EXPECT_NE(t1, t2);
    EXPECT_EQ(c.numTypes(), 2u);
}

TEST(WarpClassifier, MaskedWarpsShareAType)
{
    // Paper Observation 4: type is independent of lane masking.
    WarpClassifier c;
    Bbv a(8), b(8);
    a.add(0, 64);
    a.add(1, 64, 5);
    b.add(0, 40);
    b.add(1, 40, 5);
    EXPECT_EQ(c.classify(a, 100), c.classify(b, 100));
}

TEST(WarpClassifier, DominantTypeAndRate)
{
    WarpClassifier c;
    for (int i = 0; i < 9; ++i)
        c.classify(makeBbv({{0, 1}}), 10);
    auto minority = c.classify(makeBbv({{1, 1}}), 10);
    EXPECT_NE(c.dominantType(), minority);
    EXPECT_DOUBLE_EQ(c.dominantRate(), 0.9);
}

TEST(WarpClassifier, EmptyClassifier)
{
    WarpClassifier c;
    EXPECT_EQ(c.dominantType(), WarpClassifier::kNoType);
    EXPECT_DOUBLE_EQ(c.dominantRate(), 0.0);
}

TEST(WarpClassifier, InstCountRecordedPerType)
{
    WarpClassifier c;
    auto t = c.classify(makeBbv({{0, 7}}), 777);
    EXPECT_EQ(c.types()[t].instCount, 777u);
}
