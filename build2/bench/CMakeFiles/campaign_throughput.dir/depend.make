# Empty dependencies file for campaign_throughput.
# This may be replaced when dependencies are built.
