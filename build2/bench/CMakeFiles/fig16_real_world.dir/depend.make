# Empty dependencies file for fig16_real_world.
# This may be replaced when dependencies are built.
