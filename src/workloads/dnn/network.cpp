#include "workloads/dnn/network.hpp"

#include <cmath>
#include <functional>
#include <map>
#include <utility>

#include "sim/log.hpp"
#include "sim/rng.hpp"
#include "workloads/dnn/layers.hpp"

namespace photon::workloads::dnn {

namespace {

/** A device tensor plus its id in the host-reference value table. */
struct Tensor
{
    std::uint32_t c = 0, h = 0, w = 0;
    Addr dev = 0;
    int host = -1;

    std::uint32_t count() const { return c * h * w; }
};

/** One host-reference op: computes its output from prior values. */
struct HostOp
{
    std::vector<int> inputs;
    std::function<std::vector<float>(
        const std::vector<std::vector<float>> &)> fn;
};

/** Incrementally builds the launch sequence + host reference graph. */
class NetBuilder
{
  public:
    NetBuilder(driver::Platform &p, std::vector<LaunchSpec> &launches,
               std::vector<HostOp> &ops, std::uint64_t seed)
        : p_(p), launches_(launches), ops_(ops), rng_(seed)
    {}

    Tensor
    input(std::uint32_t c, std::uint32_t h, std::uint32_t w)
    {
        std::vector<float> host(std::size_t{c} * h * w);
        for (float &v : host)
            v = rng_.nextFloat(-1.0f, 1.0f);
        Tensor t = allocTensor(c, h, w);
        p_.memWrite(t.dev, host.data(), host.size() * 4);
        t.host = addOp({{}, [host](const auto &) { return host; }});
        return t;
    }

    Tensor
    conv(const Tensor &in, std::uint32_t out_c, std::uint32_t kernel,
         std::uint32_t stride, std::uint32_t pad,
         const std::string &label)
    {
        ConvParams cp;
        cp.inC = in.c;
        cp.inH = in.h;
        cp.inW = in.w;
        cp.outC = out_c;
        cp.kernel = kernel;
        cp.stride = stride;
        cp.pad = pad;

        float bound = std::sqrt(
            2.0f / static_cast<float>(in.c * kernel * kernel));
        std::vector<float> w(cp.weightCount());
        for (float &v : w)
            v = rng_.nextFloat(-bound, bound);
        Addr wdev = p_.alloc(w.size() * 4);
        p_.memWrite(wdev, w.data(), w.size() * 4);

        Tensor out = allocTensor(out_c, cp.outH(), cp.outW());
        addLaunch(getProgram("conv", [&] { return buildConv(cp); }, cp),
                  out.count(),
                  {u32(in.dev), u32(wdev), u32(out.dev)}, label);
        out.host = addOp(
            {{in.host}, [cp, w = std::move(w)](const auto &vals) {
                 std::vector<float> o;
                 refConv(cp, vals[0], w, o);
                 return o;
             }});
        return out;
    }

    Tensor
    maxpool(const Tensor &in, const std::string &label)
    {
        Tensor out = allocTensor(in.c, in.h / 2, in.w / 2);
        addLaunch(getProgram("maxpool" + dimKey(in),
                             [&] { return buildMaxPool(in.c, in.h, in.w); }),
                  out.count(), {u32(in.dev), u32(out.dev)}, label);
        std::uint32_t c = in.c, h = in.h, w = in.w;
        out.host = addOp({{in.host}, [c, h, w](const auto &vals) {
                              std::vector<float> o;
                              refMaxPool(c, h, w, vals[0], o);
                              return o;
                          }});
        return out;
    }

    Tensor
    globalAvgPool(const Tensor &in, const std::string &label)
    {
        Tensor out = allocTensor(in.c, 1, 1);
        addLaunch(getProgram("gavg" + dimKey(in),
                             [&] {
                                 return buildGlobalAvgPool(in.c, in.h,
                                                           in.w);
                             }),
                  out.count(), {u32(in.dev), u32(out.dev)}, label);
        std::uint32_t c = in.c, h = in.h, w = in.w;
        out.host = addOp({{in.host}, [c, h, w](const auto &vals) {
                              std::vector<float> o;
                              refGlobalAvgPool(c, h, w, vals[0], o);
                              return o;
                          }});
        return out;
    }

    Tensor
    dense(const Tensor &in, std::uint32_t out_n, const std::string &label)
    {
        std::uint32_t in_n = in.count();
        float bound = std::sqrt(2.0f / static_cast<float>(in_n));
        std::vector<float> w(std::size_t{out_n} * in_n);
        for (float &v : w)
            v = rng_.nextFloat(-bound, bound);
        Addr wdev = p_.alloc(w.size() * 4);
        p_.memWrite(wdev, w.data(), w.size() * 4);

        Tensor out = allocTensor(out_n, 1, 1);
        addLaunch(getProgram("dense" + std::to_string(in_n) + "_" +
                                 std::to_string(out_n),
                             [&] { return buildDense(in_n, out_n); }),
                  out_n, {u32(in.dev), u32(wdev), u32(out.dev)}, label);
        out.host = addOp(
            {{in.host},
             [in_n, out_n, w = std::move(w)](const auto &vals) {
                 std::vector<float> o;
                 refDense(in_n, out_n, vals[0], w, o);
                 return o;
             }});
        return out;
    }

    Tensor
    relu(const Tensor &in, const std::string &label)
    {
        Tensor out = allocTensor(in.c, in.h, in.w);
        addLaunch(getProgram("relu_n", [] { return buildReluN(); }),
                  in.count(),
                  {u32(in.dev), u32(out.dev), in.count()}, label);
        out.host = addOp({{in.host}, [](const auto &vals) {
                              std::vector<float> o;
                              refRelu(vals[0], o);
                              return o;
                          }});
        return out;
    }

    Tensor
    add(const Tensor &a, const Tensor &b, const std::string &label)
    {
        Tensor out = allocTensor(a.c, a.h, a.w);
        addLaunch(getProgram("add_n", [] { return buildAddN(); }),
                  a.count(),
                  {u32(a.dev), u32(b.dev), u32(out.dev), a.count()},
                  label);
        out.host = addOp({{a.host, b.host}, [](const auto &vals) {
                              std::vector<float> o;
                              refAdd(vals[0], vals[1], o);
                              return o;
                          }});
        return out;
    }

    Tensor
    batchNorm(const Tensor &in, const std::string &label)
    {
        std::uint32_t c = in.c, hw = in.h * in.w;
        std::vector<float> gamma(c), beta(c);
        for (float &v : gamma)
            v = rng_.nextFloat(0.8f, 1.2f);
        for (float &v : beta)
            v = rng_.nextFloat(-0.1f, 0.1f);
        Addr gdev = p_.alloc(c * 4), bdev = p_.alloc(c * 4);
        p_.memWrite(gdev, gamma.data(), c * 4);
        p_.memWrite(bdev, beta.data(), c * 4);

        Tensor out = allocTensor(in.c, in.h, in.w);
        addLaunch(getProgram("bn" + dimKey(in),
                             [&] { return buildBatchNorm(c, hw); }),
                  in.count(),
                  {u32(in.dev), u32(gdev), u32(bdev), u32(out.dev)},
                  label);
        out.host = addOp(
            {{in.host}, [c, hw, gamma = std::move(gamma),
                         beta = std::move(beta)](const auto &vals) {
                 std::vector<float> o;
                 refBatchNorm(c, hw, vals[0], gamma, beta, o);
                 return o;
             }});
        return out;
    }

  private:
    static std::uint32_t
    u32(Addr a)
    {
        return static_cast<std::uint32_t>(a);
    }

    static std::string
    dimKey(const Tensor &t)
    {
        // Built up by append: chained operator+ trips a GCC 12
        // -Wrestrict false positive under -Werror.
        std::string key = "_";
        key += std::to_string(t.c);
        key += 'x';
        key += std::to_string(t.h);
        key += 'x';
        key += std::to_string(t.w);
        return key;
    }

    Tensor
    allocTensor(std::uint32_t c, std::uint32_t h, std::uint32_t w)
    {
        Tensor t{c, h, w, 0, -1};
        t.dev = p_.alloc(std::uint64_t{t.count()} * 4);
        return t;
    }

    int
    addOp(HostOp op)
    {
        ops_.push_back(std::move(op));
        return static_cast<int>(ops_.size()) - 1;
    }

    template <typename F>
    isa::ProgramPtr
    getProgram(const std::string &key, F build)
    {
        auto it = programs_.find(key);
        if (it == programs_.end())
            it = programs_.emplace(key, build()).first;
        return it->second;
    }

    template <typename F>
    isa::ProgramPtr
    getProgram(const std::string &base, F build, const ConvParams &cp)
    {
        std::string key = base + std::to_string(cp.inC) + "_" +
                          std::to_string(cp.outC) + "_" +
                          std::to_string(cp.inH) + "_" +
                          std::to_string(cp.kernel) + "_" +
                          std::to_string(cp.stride);
        return getProgram(key, build);
    }

    void
    addLaunch(const isa::ProgramPtr &prog, std::uint32_t threads,
              const std::vector<std::uint32_t> &args,
              const std::string &label)
    {
        // Pad to whole wavefronts; the guarded kernels (dense, global
        // average pool) mask the excess lanes off.
        threads = (threads + 63) / 64 * 64;
        std::uint32_t wg_size = threads < 256 ? threads : 256;
        PHOTON_ASSERT(threads % wg_size == 0,
                      "thread count not workgroup-aligned");
        Addr kernarg = p_.packArgs(args);
        launches_.push_back({prog, threads / wg_size, wg_size / 64,
                             kernarg, label});
    }

    driver::Platform &p_;
    std::vector<LaunchSpec> &launches_;
    std::vector<HostOp> &ops_;
    Rng rng_;
    std::map<std::string, isa::ProgramPtr> programs_;
};

/** A workload defined by a network-construction function. */
class DnnWorkload : public Workload
{
  public:
    using BuildFn = std::function<Tensor(NetBuilder &)>;

    DnnWorkload(std::string name, std::uint64_t seed, BuildFn build)
        : name_(std::move(name)), seed_(seed), build_(std::move(build))
    {}

    std::string name() const override { return name_; }

    void
    setup(driver::Platform &p) override
    {
        NetBuilder nb(p, launches_, ops_, seed_);
        output_ = build_(nb);
    }

    const std::vector<LaunchSpec> &launches() const override
    {
        return launches_;
    }

    bool
    check(driver::Platform &p) const override
    {
        // Replay the host graph.
        std::vector<std::vector<float>> vals(ops_.size());
        for (std::size_t i = 0; i < ops_.size(); ++i) {
            std::vector<std::vector<float>> ins;
            for (int in : ops_[i].inputs)
                ins.push_back(vals[in]);
            vals[i] = ops_[i].fn(ins);
        }
        const std::vector<float> &want = vals[output_.host];
        std::vector<float> got(want.size());
        p.memRead(output_.dev, got.data(), got.size() * 4);
        for (std::size_t i = 0; i < want.size(); ++i) {
            float tol =
                1e-3f * std::max(1.0f, std::abs(want[i]));
            if (std::abs(got[i] - want[i]) > tol)
                return false;
        }
        return true;
    }

  private:
    std::string name_;
    std::uint64_t seed_;
    BuildFn build_;
    std::vector<LaunchSpec> launches_;
    std::vector<HostOp> ops_;
    Tensor output_;
};

} // namespace

WorkloadPtr
makeVgg(int depth, std::uint32_t base_width, std::uint32_t input_hw)
{
    PHOTON_ASSERT(depth == 16 || depth == 19, "VGG depth must be 16/19");
    std::string name = "VGG-" + std::to_string(depth);
    std::vector<std::uint32_t> convs =
        depth == 16 ? std::vector<std::uint32_t>{2, 2, 3, 3, 3}
                    : std::vector<std::uint32_t>{2, 2, 4, 4, 4};

    auto build = [convs, base_width, input_hw](NetBuilder &nb) {
        Tensor x = nb.input(4, input_hw, input_hw);
        std::uint32_t widths[5] = {base_width, 2 * base_width,
                                   4 * base_width, 8 * base_width,
                                   8 * base_width};
        for (std::uint32_t g = 0; g < 5; ++g) {
            for (std::uint32_t i = 0; i < convs[g]; ++i) {
                std::string label = "conv" + std::to_string(g + 1) + "-" +
                                    std::to_string(i + 1);
                x = nb.conv(x, widths[g], 3, 1, 1, label);
                x = nb.relu(x, label);
            }
            x = nb.maxpool(x, "pool" + std::to_string(g + 1));
        }
        x = nb.dense(x, 16 * base_width, "fc-6");
        x = nb.relu(x, "fc-6");
        x = nb.dense(x, 16 * base_width, "fc-7");
        x = nb.relu(x, "fc-7");
        x = nb.dense(x, 4 * base_width, "fc-8");
        return x;
    };
    return std::make_unique<DnnWorkload>(name, 0x5157 + depth, build);
}

WorkloadPtr
makeResnet(int depth, std::uint32_t base_width, std::uint32_t input_hw)
{
    struct Spec
    {
        bool bottleneck;
        std::uint32_t blocks[4];
    };
    Spec spec;
    switch (depth) {
      case 18: spec = {false, {2, 2, 2, 2}}; break;
      case 34: spec = {false, {3, 4, 6, 3}}; break;
      case 50: spec = {true, {3, 4, 6, 3}}; break;
      case 101: spec = {true, {3, 4, 23, 3}}; break;
      case 152: spec = {true, {3, 8, 36, 3}}; break;
      default:
        fatal("unsupported ResNet depth ", depth);
    }
    std::string name = "ResNet-" + std::to_string(depth);

    auto build = [spec, base_width, input_hw](NetBuilder &nb) {
        Tensor x = nb.input(4, input_hw, input_hw);
        // CIFAR-style stem (3x3 stride 1) keeps every map a power of
        // two at 32x32 inputs; the ImageNet 7x7/2 stem + maxpool is
        // equivalent in kernel structure at 224x224.
        x = nb.conv(x, base_width, 3, 1, 1, "conv1");
        x = nb.batchNorm(x, "conv1");
        x = nb.relu(x, "conv1");

        std::uint32_t expansion = spec.bottleneck ? 4 : 1;
        for (std::uint32_t stage = 0; stage < 4; ++stage) {
            std::uint32_t planes = (base_width << stage) / expansion;
            if (planes == 0)
                planes = 1;
            std::uint32_t out_c = planes * expansion;
            for (std::uint32_t blk = 0; blk < spec.blocks[stage]; ++blk) {
                std::string label = "layer" + std::to_string(stage + 1) +
                                    "_" + std::to_string(blk + 1);
                std::uint32_t stride =
                    (stage > 0 && blk == 0) ? 2 : 1;
                Tensor identity = x;
                Tensor y;
                if (spec.bottleneck) {
                    y = nb.conv(x, planes, 1, 1, 0, label);
                    y = nb.batchNorm(y, label);
                    y = nb.relu(y, label);
                    y = nb.conv(y, planes, 3, stride, 1, label);
                    y = nb.batchNorm(y, label);
                    y = nb.relu(y, label);
                    y = nb.conv(y, out_c, 1, 1, 0, label);
                    y = nb.batchNorm(y, label);
                } else {
                    y = nb.conv(x, out_c, 3, stride, 1, label);
                    y = nb.batchNorm(y, label);
                    y = nb.relu(y, label);
                    y = nb.conv(y, out_c, 3, 1, 1, label);
                    y = nb.batchNorm(y, label);
                }
                if (stride != 1 || identity.c != out_c) {
                    identity =
                        nb.conv(identity, out_c, 1, stride, 0, label);
                    identity = nb.batchNorm(identity, label);
                }
                y = nb.add(y, identity, label);
                x = nb.relu(y, label);
            }
        }
        x = nb.globalAvgPool(x, "avgpool");
        x = nb.dense(x, 4 * base_width, "fc");
        return x;
    };
    return std::make_unique<DnnWorkload>(name, 0x4e57 + depth, build);
}

} // namespace photon::workloads::dnn
