#!/bin/sh
# Runs every table/figure reproduction binary in order.
set -e
BUILD=${1:-build}
if [ $# -gt 0 ]; then shift; fi
for b in table1_configs table2_benchmarks fig01_ipc_traces \
         fig02_bb_exec_time fig03_bb_issue_retire fig04_warp_issue_retire \
         fig06_gpubbv_clusters fig08_bb_distribution \
         fig11_warp_distribution fig13_overall_r9nano fig14_overall_mi100 \
         fig15_sampling_levels fig16_real_world fig17_vgg_layers \
         tradeoff_online_offline ablation_thresholds \
         campaign_throughput backend_speedup hotloop_speedup issue_loop \
         serve_load; do
    echo "##### $b #####"
    "$BUILD/bench/$b" "$@"
done
echo "##### micro_components #####"
"$BUILD/bench/micro_components" --benchmark_min_time=0.2

# hotloop_speedup writes BENCH_hotloop.json; surface the telemetry
# schema version it was produced against so downstream tooling can
# reject stale artifacts. Schema v3 added the per-launch backend
# fidelity fields, so an older version here means a stale binary ran.
if [ -f BENCH_hotloop.json ]; then
    grep '"telemetry_schema_version": 3,' BENCH_hotloop.json ||
        { echo "BENCH_hotloop.json telemetry_schema_version is not 3" >&2
          exit 1; }
    grep -q '"oversubscribed"' BENCH_hotloop.json ||
        { echo "BENCH_hotloop.json missing oversubscribed flags" >&2
          exit 1; }
fi

# campaign_throughput writes BENCH_campaign.json with the
# steal-vs-static scheduler comparison; an artifact without the
# scheduler block came from a stale binary.
if [ -f BENCH_campaign.json ]; then
    grep '"telemetry_schema_version": 3,' BENCH_campaign.json ||
        { echo "BENCH_campaign.json telemetry_schema_version is not 3" >&2
          exit 1; }
    grep -q '"steal_ops"' BENCH_campaign.json ||
        { echo "BENCH_campaign.json missing scheduler stats" >&2
          exit 1; }
fi

# backend_speedup writes BENCH_backend.json with the detailed vs
# interval vs auto comparison. The binary already fails itself when a
# stated error bound or minimum speedup is violated; here we only
# check the artifact carries the gate fields (a stale binary would
# not) and that auto mode demonstrably switched on pagerank.
if [ -f BENCH_backend.json ]; then
    grep '"telemetry_schema_version": 3,' BENCH_backend.json ||
        { echo "BENCH_backend.json telemetry_schema_version is not 3" >&2
          exit 1; }
    grep -q '"error_bound_pct"' BENCH_backend.json ||
        { echo "BENCH_backend.json missing error/speedup gates" >&2
          exit 1; }
    grep -q '"backend": "auto".*"latched_kernels": [1-9]' \
        BENCH_backend.json ||
        { echo "BENCH_backend.json: auto mode never latched a kernel" >&2
          exit 1; }
fi
