#include "driver/platform.hpp"

#include <chrono>

#include "sim/log.hpp"

namespace photon::driver {

const char *
simModeName(SimMode mode)
{
    switch (mode) {
      case SimMode::FullDetailed: return "full";
      case SimMode::Photon: return "photon";
      case SimMode::Pka: return "pka";
    }
    return "?";
}

Platform::Platform(const GpuConfig &gpu_cfg, SimMode mode,
                   const SamplingConfig &sampling_cfg,
                   timing::BackendKind backend)
    : gpuCfg_(gpu_cfg), mode_(mode), samplingCfg_(sampling_cfg),
      backend_(backend),
      mem_(gpu_cfg.dram.sizeBytes < (512ull << 20) ? gpu_cfg.dram.sizeBytes
                                                   : (512ull << 20)),
      gpu_(gpu_cfg), detailed_(gpu_)
{
    PHOTON_ASSERT(backend_ == timing::BackendKind::Detailed ||
                      mode_ == SimMode::FullDetailed,
                  "non-detailed timing backends require full mode (the "
                  "sampled modes' control planes need monitor hooks)");
    if (backend_ != timing::BackendKind::Detailed)
        interval_ = std::make_unique<timing::IntervalBackend>(gpu_);
    if (backend_ == timing::BackendKind::Auto)
        pilot_ = std::make_unique<sampling::FidelityPilot>(
            gpu_, *interval_, samplingCfg_);
    if (mode_ == SimMode::Photon)
        photon_ =
            std::make_unique<sampling::PhotonSampler>(gpu_, samplingCfg_);
    else if (mode_ == SimMode::Pka)
        pka_ = std::make_unique<sampling::PkaSampler>(gpu_, samplingCfg_);
}

timing::TimingBackend &
Platform::activeBackend()
{
    if (backend_ == timing::BackendKind::Interval)
        return *interval_;
    return detailed_;
}

Platform::~Platform() = default;

Addr
Platform::alloc(std::uint64_t bytes)
{
    return mem_.allocate(bytes);
}

void
Platform::memWrite(Addr dst, const void *src, std::uint64_t bytes)
{
    mem_.writeBlock(dst, src, bytes);
}

void
Platform::memRead(Addr src, void *dst, std::uint64_t bytes) const
{
    mem_.readBlock(src, dst, bytes);
}

Addr
Platform::packArgs(const std::vector<std::uint32_t> &args)
{
    Addr base = mem_.allocate(args.size() * 4 + 4);
    mem_.writeBlock(base, args.data(), args.size() * 4);
    return base;
}

LaunchResult
Platform::launch(const isa::ProgramPtr &program,
                 std::uint32_t num_workgroups,
                 std::uint32_t waves_per_workgroup, Addr kernarg,
                 const std::string &label)
{
    PHOTON_ASSERT(program != nullptr, "null program");
    func::LaunchDims dims;
    dims.numWorkgroups = num_workgroups;
    dims.wavesPerWorkgroup = waves_per_workgroup;
    dims.kernargBase = kernarg;

    LaunchResult result;
    result.label = label.empty() ? program->name() : label;

    auto t0 = std::chrono::steady_clock::now();
    switch (mode_) {
      case SimMode::FullDetailed: {
        func::LaunchTracePtr trace = acquireTrace(*program, dims);
        if (backend_ == timing::BackendKind::Auto) {
            result.sample =
                pilot_->runKernel(*program, dims, mem_, trace.get());
            break;
        }
        timing::TimingBackend &be = activeBackend();
        const timing::BackendCaps caps = be.caps();
        timing::RunOptions run_opts;
        run_opts.replay = trace.get();
        timing::RunOutcome out =
            be.runKernel(*program, dims, mem_, nullptr, run_opts);
        result.sample.cycles = out.cycles();
        result.sample.insts = out.instsIssued;
        result.sample.level = sampling::SampleLevel::Full;
        sampling::KernelTelemetry &tele = result.sample.telemetry;
        tele.kernel = program->name();
        tele.numWorkgroups = dims.numWorkgroups;
        tele.wavesPerWorkgroup = dims.wavesPerWorkgroup;
        tele.level = sampling::SampleLevel::Full;
        tele.predictedCycles = out.cycles();
        tele.predictedInsts = out.instsIssued;
        tele.totalWarps = dims.totalWaves();
        tele.backend = be.name();
        if (caps.cycleLevel) {
            tele.detailedCycles = out.cycles();
            tele.detailedInsts = out.instsIssued;
            tele.detailedWarps = out.wavesCompleted;
            tele.backendDetailedCycles = out.cycles();
        } else {
            tele.backendIntervalCycles = out.cycles();
        }
        // Statistics the backend never measured are reported as
        // absent (null), not zero.
        tele.hasDetailedStats = caps.epochStats;
        if (caps.epochStats) {
            tele.epochs = out.epochs;
            tele.epochCycles = out.epochCycleSum;
            tele.barrierCrossings = out.barrierCrossings;
        }
        break;
      }
      case SimMode::Photon: {
        // Consume-only: photon's sampled passes emulate only a few
        // warps, so capturing (a full functional run) would cost more
        // than it saves — but a trace captured elsewhere (campaign
        // sibling, photond warm state) replaces the per-warp analysis
        // emulation bit-identically.
        func::LaunchTracePtr trace;
        if (traceReuse_ && func::traceable(*program)) {
            trace =
                traceStore_->lookup(func::traceKey(*program, dims, mem_));
            if (trace)
                ++traceHits_;
            else
                ++traceMisses_;
        }
        result.sample =
            photon_->runKernel(*program, dims, mem_, trace.get());
        break;
      }
      case SimMode::Pka:
        result.sample = pka_->runKernel(*program, dims, mem_);
        break;
    }
    auto t1 = std::chrono::steady_clock::now();
    result.wallSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    result.sample.telemetry.job = result.label;
    result.sample.telemetry.wallSeconds = result.wallSeconds;
    if (mode_ != SimMode::FullDetailed) {
        // The sampled modes run their detailed portion on the
        // cycle-level core; record that in the v3 fidelity split.
        result.sample.telemetry.backendDetailedCycles =
            result.sample.telemetry.detailedCycles;
    }

    totalCycles_ += result.sample.cycles;
    totalInsts_ += result.sample.insts;
    totalWall_ += result.wallSeconds;
    log_.push_back(result);
    return result;
}

func::LaunchTracePtr
Platform::acquireTrace(const isa::Program &program,
                       const func::LaunchDims &dims)
{
    if (!traceReuse_ || !func::traceable(program))
        return nullptr;
    const std::string key = func::traceKey(program, dims, mem_);
    func::LaunchTracePtr trace = traceStore_->lookup(key);
    if (trace) {
        ++traceHits_;
        // Replay never writes memory; land the launch's stores up
        // front (replay reads nothing, so ordering is immaterial and
        // the final state matches an emulated launch bit-for-bit).
        func::applyAllStores(*trace, mem_);
        return trace;
    }
    ++traceMisses_;
    trace = func::captureLaunchTrace(program, dims, mem_);
    ++traceCaptures_;
    traceStore_->insert(key, trace);
    return trace;
}

std::vector<sampling::KernelTelemetry>
Platform::telemetry() const
{
    std::vector<sampling::KernelTelemetry> records;
    records.reserve(log_.size());
    for (const LaunchResult &l : log_)
        records.push_back(l.sample.telemetry);
    return records;
}

StatRegistry
Platform::stats() const
{
    StatRegistry reg;
    // Only backends that actually ran export their statistics: a
    // pure-interval platform never touched the detailed core, and
    // all-zero gpu.* counters would misreport "measured nothing" as
    // "measured zero".
    if (backend_ != timing::BackendKind::Interval)
        gpu_.exportStats(reg);
    if (interval_)
        interval_->exportStats(reg);
    reg.set("platform.kernels", static_cast<double>(log_.size()));
    reg.set("platform.trace_hits", static_cast<double>(traceHits_));
    reg.set("platform.trace_misses", static_cast<double>(traceMisses_));
    reg.set("platform.trace_captures",
            static_cast<double>(traceCaptures_));
    reg.set("platform.total_cycles", static_cast<double>(totalCycles_));
    reg.set("platform.total_insts", static_cast<double>(totalInsts_));
    reg.set("platform.total_wall_seconds", totalWall_);
    return reg;
}

} // namespace photon::driver
