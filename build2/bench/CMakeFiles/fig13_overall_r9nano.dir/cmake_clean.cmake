file(REMOVE_RECURSE
  "CMakeFiles/fig13_overall_r9nano.dir/fig13_overall_r9nano.cpp.o"
  "CMakeFiles/fig13_overall_r9nano.dir/fig13_overall_r9nano.cpp.o.d"
  "fig13_overall_r9nano"
  "fig13_overall_r9nano.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_overall_r9nano.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
