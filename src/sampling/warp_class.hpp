/**
 * @file
 * Warp classification: warps executing identical instruction sequences
 * (identical BBVs) form one warp type (paper Observation 4). The
 * classifier aggregates type populations and per-type instruction counts.
 */

#ifndef PHOTON_SAMPLING_WARP_CLASS_HPP
#define PHOTON_SAMPLING_WARP_CLASS_HPP

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sampling/bbv.hpp"

namespace photon::sampling {

/** Index of a warp type within one kernel's classifier. */
using WarpTypeId = std::uint32_t;

/** Aggregate data about one warp type. */
struct WarpType
{
    Bbv bbv;                      ///< representative BBV
    std::uint64_t instCount = 0;  ///< instructions per warp of this type
    std::uint64_t numWarps = 0;   ///< population (among classified warps)
};

/** Groups warps into types by exact BBV equality. */
class WarpClassifier
{
  public:
    /** Classify one warp; creates the type on first sight. */
    WarpTypeId classify(const Bbv &bbv, std::uint64_t inst_count);

    /** Rebuild a classifier from exported types (the artifact-store
     *  deserialization hook): the hash index is reconstructed from each
     *  type's representative BBV and the warp total from the
     *  populations, so the result is equivalent to the classifier the
     *  types were exported from. */
    static WarpClassifier fromTypes(std::vector<WarpType> types);

    const std::vector<WarpType> &types() const { return types_; }
    std::uint64_t totalWarps() const { return totalWarps_; }
    std::uint32_t numTypes() const
    {
        return static_cast<std::uint32_t>(types_.size());
    }

    /** Type with the largest population; kNoType when empty. */
    WarpTypeId dominantType() const;

    /** Population share of the dominant type in [0, 1]. */
    double dominantRate() const;

    static constexpr WarpTypeId kNoType = ~WarpTypeId{0};

  private:
    std::unordered_map<std::uint64_t, WarpTypeId> byHash_;
    std::vector<WarpType> types_;
    std::uint64_t totalWarps_ = 0;
};

} // namespace photon::sampling

#endif // PHOTON_SAMPLING_WARP_CLASS_HPP
