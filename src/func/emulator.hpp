/**
 * @file
 * The functional emulator: executes one instruction of one wavefront
 * against its architectural state and simulated memory. Used both by the
 * detailed timing model (execution-driven, at issue time) and by the
 * fast-forward / online-analysis paths (functional only).
 */

#ifndef PHOTON_FUNC_EMULATOR_HPP
#define PHOTON_FUNC_EMULATOR_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "func/memory.hpp"
#include "func/wave_state.hpp"
#include "isa/basic_block.hpp"
#include "isa/program.hpp"

namespace photon::func {

/** Everything the timing model needs to know about one executed
 *  instruction. The line buffer is fixed-size to avoid per-step heap
 *  allocation (64 lanes touch at most 64 distinct lines). */
struct StepResult
{
    isa::Opcode op = isa::Opcode::S_NOP;
    isa::FuncUnit unit = isa::FuncUnit::SALU;
    bool done = false;        ///< s_endpgm executed
    bool barrier = false;     ///< s_barrier executed
    bool branchTaken = false;
    std::uint32_t activeLanes = 0;
    std::uint32_t ldsAccesses = 0;
    bool linesWrite = false;
    std::uint32_t numLines = 0;
    std::array<Addr, kWavefrontLanes> lines{};
};

/**
 * Stateless instruction interpreter. One instance can serve any number of
 * wavefronts; all mutable state lives in WaveState / GlobalMemory / LDS.
 */
class Emulator
{
  public:
    /**
     * Execute the instruction at ws.pc and advance the PC.
     *
     * @param program the kernel being executed
     * @param ws wavefront architectural state (mutated)
     * @param mem simulated global memory
     * @param lds the wavefront's workgroup LDS arena (may be empty when
     *            the program declares no LDS usage)
     * @param out filled with the timing-relevant effects
     */
    void step(const isa::Program &program, WaveState &ws, GlobalMemory &mem,
              std::vector<std::uint8_t> &lds, StepResult &out) const;

    /**
     * Run one wavefront functionally to completion (fast-forward mode).
     * Barriers are ignored — functional semantics in this simulator never
     * depend on cross-wavefront ordering within a kernel.
     *
     * @return the number of instructions executed.
     */
    std::uint64_t runWave(const isa::Program &program, WaveState &ws,
                          GlobalMemory &mem,
                          std::vector<std::uint8_t> &lds) const;

  private:
    std::uint32_t readScalar(const WaveState &ws,
                             const isa::Operand &o) const;
    std::uint64_t readMaskOperand(const WaveState &ws,
                                  std::int32_t idx) const;
    void writeMaskOperand(WaveState &ws, std::int32_t idx,
                          std::uint64_t value) const;
};

} // namespace photon::func

#endif // PHOTON_FUNC_EMULATOR_HPP
