# Empty dependencies file for test_warp_class.
# This may be replaced when dependencies are built.
