/**
 * @file
 * Top-level GPU timing model: owns the CUs and the memory hierarchy and
 * runs kernels in detailed (execution-driven) mode, with optional monitor
 * hooks and early-stop for sampled simulation.
 *
 * The run loop is event-driven: CUs are filed in a min-heap keyed by
 * their next-event cycle and only ticked when due, instead of being
 * scanned every cycle. An opt-in parallel mode (cuThreads > 1) shards
 * due CUs across worker threads under a per-cycle barrier; CU front
 * halves run concurrently against private state and their shared-memory
 * effects commit serially in (cycle, cuId, issue index) order, so the
 * results are bit-identical to the serial schedule. A self-contained
 * AoS per-cycle scanning engine (timing/reference.hpp) is kept behind
 * useSeedLoop as the frozen reference implementation for cross-checks
 * and as the bench baseline.
 *
 * Monitor-free parallel runs use epoch synchronization instead
 * (runEpochLoop, DESIGN.md §11): the loop computes a conservative safe
 * horizon — bounded by the minimum shared-memory visibility latency and
 * by the earliest possible wavefront retirement — lets every worker
 * tick its CUs independently across the whole [base, horizon) window,
 * then replays the queued shared-state effects serially in (cycle,
 * cuId, issue-order) at the boundary. Results stay bit-identical to
 * serial while barrier crossings drop from two per cycle to two per
 * epoch.
 */

#ifndef PHOTON_TIMING_GPU_HPP
#define PHOTON_TIMING_GPU_HPP

#include <cstdint>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "func/emulator.hpp"
#include "func/memory.hpp"
#include "func/wave_state.hpp"
#include "isa/program.hpp"
#include "sim/config.hpp"
#include "sim/phase_annotations.hpp"
#include "sim/stats.hpp"
#include "timing/cu.hpp"
#include "timing/dispatcher.hpp"
#include "timing/memsys.hpp"
#include "timing/monitor.hpp"

namespace photon::timing {

class ReferenceEngine;

/** Options for one detailed kernel run. */
struct RunOptions
{
    bool collectIpcTrace = false;
    Cycle ipcBucketCycles = 1024;
    /** Delimit monitored basic blocks at s_waitcnt as well (must match
     *  the sampler's own block table). */
    bool splitBbAtWaitcnt = false;
    /** Worker threads ticking CUs inside this kernel; 0 uses the Gpu
     *  default (setCuThreads), 1 is fully serial. Any value produces
     *  bit-identical results. */
    std::uint32_t cuThreads = 0;
    /** Run the frozen AoS per-cycle reference engine instead of the
     *  event-driven core (cross-checks, bench baseline); see
     *  timing/reference.hpp. */
    bool useSeedLoop = false;
    /** Clamp epoch length to this many cycles; 0 uses the Gpu default
     *  (setEpochCap). 1 degenerates epochs to per-cycle stepping — the
     *  stress mode the golden-parity tests pin. */
    Cycle maxEpochCycles = 0;
    /** Replay the issue front from this captured functional trace
     *  instead of re-executing register semantics (func/warp_trace.hpp).
     *  The caller must have applied the trace's store log to memory and
     *  guarantees the trace matches (program, dims, input). Ignored by
     *  the seed reference loop, which always emulates. */
    const func::LaunchTrace *replay = nullptr;
};

/** Result of one detailed kernel run. */
struct RunOutcome
{
    Cycle startCycle = 0;        ///< absolute GPU cycle at launch
    Cycle endCycle = 0;          ///< absolute GPU cycle at completion
    std::uint64_t instsIssued = 0;
    std::uint32_t wavesCompleted = 0;
    bool stoppedEarly = false;   ///< monitor requested a sampling switch
    /** First workgroup never dispatched (== numWorkgroups when all ran). */
    std::uint32_t firstUndispatchedWg = 0;
    /** Cycles with at least one resident wavefront on any CU. */
    Cycle activeCycles = 0;
    /** Integral of (CUs with resident work) over the run's cycles. */
    std::uint64_t busyCuCycles = 0;
    /** Integral of resident wavefronts over the run's cycles. */
    std::uint64_t waveCycles = 0;
    /** Wavefront IPC per time bucket when collectIpcTrace is set. */
    std::vector<double> ipcTrace;

    // Parallel-synchronization statistics (zero for serial runs).
    /** Epochs executed by the epoch run loop. */
    std::uint64_t epochs = 0;
    /** Simulated cycles covered by those epochs (mean horizon length =
     *  epochCycleSum / epochs). */
    std::uint64_t epochCycleSum = 0;
    /** Thread-barrier crossings paid by the parallel run loops (two
     *  per epoch, or two per ticked cycle in per-cycle mode). */
    std::uint64_t barrierCrossings = 0;

    Cycle cycles() const { return endCycle - startCycle; }
};

/**
 * The GPU. The clock is monotonic across kernel launches so caches stay
 * warm and port/bank availability timestamps remain meaningful, exactly
 * as on hardware.
 */
class Gpu
{
  public:
    explicit Gpu(const GpuConfig &cfg);
    ~Gpu(); // out of line: ReferenceEngine is incomplete here

    /**
     * Run one kernel in detailed mode. When @p monitor requests a stop,
     * dispatching halts, resident workgroups drain, and the outcome
     * reports stoppedEarly plus the first undispatched workgroup.
     */
    RunOutcome runKernel(const isa::Program &program,
                         const func::LaunchDims &dims,
                         func::GlobalMemory &mem,
                         KernelMonitor *monitor = nullptr,
                         const RunOptions &opts = {});

    /** Advance the clock without simulating (sampled/skipped periods). */
    void skipTime(Cycle cycles) { now_ += cycles; }

    /** Default intra-kernel CU worker threads for runs whose RunOptions
     *  leave cuThreads at 0 (so samplers' internal runs inherit it). */
    void setCuThreads(std::uint32_t n) { cuThreadsDefault_ = n; }
    std::uint32_t cuThreads() const { return cuThreadsDefault_; }

    /** Default epoch-length clamp for runs whose RunOptions leave
     *  maxEpochCycles at 0; 0 means unclamped (the safe horizon
     *  alone). Mainly for tests forcing degenerate tiny epochs. */
    void setEpochCap(Cycle cap) { epochCapDefault_ = cap; }
    Cycle epochCap() const { return epochCapDefault_; }

    Cycle now() const { return now_; }
    const GpuConfig &config() const { return cfg_; }
    MemorySystem &memsys() { return memsys_; }
    const func::Emulator &emulator() const { return emu_; }

    /** Export memory-system and run statistics. Exported counters are
     *  user-visible results (determinism sink). */
    PHOTON_DET_SINK
    void exportStats(StatRegistry &stats) const;

  private:
    /** Heap entry: (next-event cycle, cuId). std::greater pops the
     *  smallest cycle first, ties in ascending cuId order — the serial
     *  CU visiting order. */
    using HeapEntry = std::pair<Cycle, std::uint32_t>;
    using EventHeap =
        std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                            std::greater<HeapEntry>>;

    /** Calendar-wheel front end for the event heap: events within the
     *  next kWheelSize cycles land in O(1) ring buckets (indexed by
     *  cycle & mask), so the dense case — every busy CU due again next
     *  cycle — never touches the heap. Only far events (memory misses)
     *  pay the O(log n) heap cost. Buckets are CU bitmaps, so filing is
     *  a bit-set and extraction walks set bits in ascending cuId order
     *  (the serial visiting order) without sorting. Power of two. */
    static constexpr std::uint32_t kWheelSize = 16;

    RunOutcome runEventLoop(KernelMonitor *monitor,
                            const RunOptions &opts,
                            std::uint32_t threads);
    /** Epoch-synchronized parallel loop (monitor-free runs only). */
    RunOutcome runEpochLoop(const RunOptions &opts,
                            std::uint32_t threads);

    /** (Re)file @p cu in the event heap at its current hint; maintains
     *  the one-valid-entry-per-CU invariant via filedAt_. */
    void fileCu(std::uint32_t cu, Cycle floor);

    /** Like fileCu but with the hint supplied by the caller (the fast
     *  tick returns it, saving a read of the cold CU object). */
    void fileCuAt(std::uint32_t cu, Cycle hint, Cycle floor);

    /** Sync the CU's residency flag into activeCuCount_. */
    void updateBusy(std::uint32_t cu);

    /** Fold retirements of a just-ticked CU into the wave/dispatch
     *  bookkeeping. */
    void noteRetirements(std::uint32_t cu);

    /** Add one instruction-issue sample to the IPC trace. */
    static void addIpcSample(RunOutcome &out, const RunOptions &opts,
                             Cycle now, std::uint32_t issued);

    /** Accumulate occupancy integrals for an advance of @p dt cycles
     *  using the current (post-tick) residency. */
    void accountAdvance(RunOutcome &out, Cycle dt) const;

    GpuConfig cfg_;
    MemorySystem memsys_;
    func::Emulator emu_;
    std::vector<ComputeUnit> cus_;
    Dispatcher dispatcher_;
    /** Frozen AoS baseline serving useSeedLoop runs; built on first
     *  use, shares memsys_/emu_/clock with the event core. */
    std::unique_ptr<ReferenceEngine> reference_;
    Cycle now_ = 0;
    std::uint64_t kernelSeq_ = 0;
    std::uint32_t cuThreadsDefault_ = 1;
    Cycle epochCapDefault_ = 0;

    // Per-kernel event/bookkeeping state (reset in runKernel).
    EventHeap heap_;
    /** kWheelSize buckets of wheelWords_ 64-bit CU masks each. */
    std::vector<std::uint64_t> wheelBits_;
    std::uint32_t wheelWords_ = 1;
    std::vector<Cycle> filedAt_;   ///< cycle of each CU's valid entry
    std::vector<std::uint8_t> cuBusy_;
    std::vector<std::uint32_t> prevRetired_;
    std::uint32_t activeCuCount_ = 0;
    std::uint32_t residentWaveCount_ = 0;
    std::uint32_t wavesPerWg_ = 0;

    /** Per-CU cursor into the epoch record queues (boundary merge). */
    std::vector<std::uint32_t> epochCursor_;

    // Cumulative occupancy counters across kernels (exportStats).
    std::uint64_t kernelsRun_ = 0;
    Cycle activeCyclesTotal_ = 0;
    std::uint64_t busyCuCyclesTotal_ = 0;
    std::uint64_t waveCyclesTotal_ = 0;
    std::uint64_t epochsTotal_ = 0;
    std::uint64_t epochCyclesTotal_ = 0;
    std::uint64_t barrierCrossingsTotal_ = 0;
};

} // namespace photon::timing

#endif // PHOTON_TIMING_GPU_HPP
