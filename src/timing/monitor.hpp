/**
 * @file
 * Observation hooks the sampling layer attaches to a detailed simulation.
 * The timing model pushes wavefront, instruction and basic-block events;
 * the monitor may ask the run loop to stop dispatching new work (the
 * "switch to sampling" decision).
 */

#ifndef PHOTON_TIMING_MONITOR_HPP
#define PHOTON_TIMING_MONITOR_HPP

#include <cstdint>

#include "func/emulator.hpp"
#include "sim/phase_annotations.hpp"
#include "isa/basic_block.hpp"
#include "sim/types.hpp"

namespace photon::timing {

/**
 * Base class for kernel-execution observers. All callbacks default to
 * no-ops so monitors only override what they need.
 */
class KernelMonitor
{
  public:
    virtual ~KernelMonitor() = default;

    /** A wavefront was scheduled onto a compute unit. */
    PHOTON_SHARED_STATE
    virtual void
    onWaveDispatched(WarpId warp, Cycle now)
    {
        (void)warp;
        (void)now;
    }

    /** A wavefront executed s_endpgm. */
    PHOTON_SHARED_STATE
    virtual void
    onWaveRetired(WarpId warp, Cycle now, std::uint64_t inst_count)
    {
        (void)warp;
        (void)now;
        (void)inst_count;
    }

    /** One instruction issued; @p complete is the cycle its result is
     *  ready (memory included). */
    PHOTON_SHARED_STATE
    virtual void
    onInstruction(WarpId warp, const func::StepResult &result, Cycle issue,
                  Cycle complete)
    {
        (void)warp;
        (void)result;
        (void)issue;
        (void)complete;
    }

    /** One dynamic basic-block execution finished. Per the paper, the
     *  execution time of a block is the interval between the issue of its
     *  first instruction and the issue of the next block's first
     *  instruction. @p active_lanes is the EXEC population at the
     *  block's first instruction — divergence changes a block's memory
     *  footprint, so the samplers track it. */
    PHOTON_SHARED_STATE
    virtual void
    onBbExecuted(WarpId warp, isa::BbId bb, Cycle issue, Cycle retire,
                 std::uint32_t active_lanes)
    {
        (void)warp;
        (void)bb;
        (void)issue;
        (void)retire;
        (void)active_lanes;
    }

    /** Polled by the run loop; return true to stop dispatching new
     *  workgroups (resident ones drain). */
    PHOTON_SHARED_STATE
    virtual bool
    wantsStop(Cycle now)
    {
        (void)now;
        return false;
    }
};

} // namespace photon::timing

#endif // PHOTON_TIMING_MONITOR_HPP
