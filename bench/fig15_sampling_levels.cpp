/**
 * @file
 * Paper Figure 15 (Section 6.2, effects of different sampling levels):
 * basic-block-sampling only, warp-sampling only, and the full Photon
 * combination, per benchmark at one representative problem size.
 */

#include <iostream>

#include "sweep_util.hpp"

using namespace photon;
using namespace photon::bench;

namespace {

SamplingConfig
levelConfig(bool kernel, bool warp, bool bb)
{
    SamplingConfig cfg;
    cfg.enableKernelSampling = kernel;
    cfg.enableWarpSampling = warp;
    cfg.enableBbSampling = bb;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = quickMode(argc, argv);
    driver::printBanner(std::cout,
                        "Figure 15: sampling levels, independently and"
                        " combined");

    struct Point
    {
        const char *name;
        WorkloadFactory factory;
    };
    std::vector<Point> points = {
        {"ReLU-16K", [] { return workloads::makeRelu(16384); }},
        {"FIR-16K", [] { return workloads::makeFir(16384); }},
        {"AES-16K", [] { return workloads::makeAes(16384); }},
        {"SC-16K", [] { return workloads::makeSc(16384); }},
        {"MM-4K", [] { return workloads::makeMm(512); }},
        {"SPMV-2K", [] { return workloads::makeSpmv(2048 * 64); }},
    };
    if (quick)
        points.resize(3);

    driver::Table t({"bench", "full wall s", "bb err %", "bb speedup",
                     "warp err %", "warp speedup", "photon err %",
                     "photon speedup"});
    double sums[3][2] = {};
    for (const Point &pt : points) {
        ModeRun full = runMode(pt.factory, driver::SimMode::FullDetailed);
        ModeRun bb = runMode(pt.factory, driver::SimMode::Photon,
                             GpuConfig::r9Nano(),
                             levelConfig(false, false, true));
        ModeRun warp = runMode(pt.factory, driver::SimMode::Photon,
                               GpuConfig::r9Nano(),
                               levelConfig(false, true, false));
        ModeRun photon = runMode(pt.factory, driver::SimMode::Photon,
                                 GpuConfig::r9Nano(),
                                 levelConfig(true, true, true));
        const ModeRun *runs[3] = {&bb, &warp, &photon};
        std::vector<std::string> row = {
            pt.name, driver::Table::num(full.wallSeconds, 2)};
        for (int i = 0; i < 3; ++i) {
            double e = errorVs(*runs[i], full);
            double s = speedupVs(*runs[i], full);
            sums[i][0] += e;
            sums[i][1] = std::max(sums[i][1], s);
            row.push_back(driver::Table::num(e, 2));
            row.push_back(driver::Table::num(s, 2));
        }
        t.addRow(row);
        std::cerr << "done " << pt.name << "\n";
    }
    t.print(std::cout);

    driver::printBanner(std::cout, "Figure 15 summary");
    const char *names[3] = {"bb-sampling", "warp-sampling", "photon"};
    for (int i = 0; i < 3; ++i) {
        std::cout << names[i] << ": avg error "
                  << driver::Table::num(
                         sums[i][0] / static_cast<double>(points.size()),
                         2)
                  << "%, max speedup "
                  << driver::Table::num(sums[i][1], 2) << "x\n";
    }
    std::cout << "(paper: avg errors 9.70% / 1.75% / 6.83%; no single"
                 " level covers all workloads)\n";
    return 0;
}
