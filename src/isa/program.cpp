#include "isa/program.hpp"

#include "sim/log.hpp"

namespace photon::isa {

Program::Program(std::string name, std::vector<Instruction> code,
                 std::uint32_t num_sgprs, std::uint32_t num_vgprs,
                 std::uint32_t lds_bytes)
    : name_(std::move(name)), code_(std::move(code)), numSgprs_(num_sgprs),
      numVgprs_(num_vgprs), ldsBytes_(lds_bytes)
{
    validate();
}

namespace {

void
checkOperand(const Operand &o, std::uint32_t num_sgprs,
             std::uint32_t num_vgprs, const std::string &name,
             std::uint32_t pc)
{
    switch (o.kind) {
      case OperandKind::SReg:
        if (o.value < 0 || o.value >= static_cast<std::int32_t>(num_sgprs))
            panic("program ", name, " pc ", pc, ": sgpr ", o.value,
                  " out of range");
        break;
      case OperandKind::VReg:
        if (o.value < 0 || o.value >= static_cast<std::int32_t>(num_vgprs))
            panic("program ", name, " pc ", pc, ": vgpr ", o.value,
                  " out of range");
        break;
      case OperandKind::Mask:
        if (o.value < 0 || o.value > kMaskAllOnes)
            panic("program ", name, " pc ", pc, ": mask reg ", o.value,
                  " out of range");
        break;
      case OperandKind::Imm:
      case OperandKind::None:
        break;
    }
}

} // namespace

void
Program::validate() const
{
    if (code_.empty())
        panic("program ", name_, " has no instructions");
    if (code_.back().op != Opcode::S_ENDPGM)
        panic("program ", name_, " does not end with s_endpgm");
    if (numSgprs_ > kMaxSgprs || numVgprs_ > kMaxVgprs)
        panic("program ", name_, " exceeds register limits");

    for (std::uint32_t pc = 0; pc < code_.size(); ++pc) {
        const Instruction &inst = code_[pc];
        checkOperand(inst.dst, numSgprs_, numVgprs_, name_, pc);
        checkOperand(inst.src0, numSgprs_, numVgprs_, name_, pc);
        checkOperand(inst.src1, numSgprs_, numVgprs_, name_, pc);
        checkOperand(inst.src2, numSgprs_, numVgprs_, name_, pc);
        if (isBranch(inst.op)) {
            if (inst.target < 0 ||
                inst.target >= static_cast<std::int32_t>(code_.size())) {
                panic("program ", name_, " pc ", pc,
                      ": unresolved branch target ", inst.target);
            }
        }
    }
}

} // namespace photon::isa
