file(REMOVE_RECURSE
  "CMakeFiles/photon_sim.dir/photon_sim.cpp.o"
  "CMakeFiles/photon_sim.dir/photon_sim.cpp.o.d"
  "photon_sim"
  "photon_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/photon_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
