/**
 * @file
 * Issue-loop microbench: drives one ComputeUnit directly (no dispatcher,
 * no event heap, no sampler) so the SIMD arbitration/scoreboard loop is
 * the only thing on the clock. Two kernels bracket the load pattern the
 * SoA layout targets:
 *
 *  - alu: a counted VALU/SALU loop — every SIMD scan finds a ready
 *    wavefront, so the bench measures raw arbitration + issue
 *    throughput over dense ready masks;
 *  - mem: strided FLAT loads — wavefronts park on memory for most
 *    cycles, so scans mostly come up empty and the bench measures the
 *    cost of a wasted scan (the branch-miss path the branchless issue
 *    mask flattens).
 *
 * Variants: the committed serial tick() (monitor-capable path), the
 * fused tickFast() (the event core's hot path), and tickFast() driven
 * at the CU's next-event hint (skipping the idle cycles the event loop
 * never visits). simdScans()/emptyScans() counters report how many
 * per-SIMD ready scans each run performed and what share found nothing.
 */

#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "driver/report.hpp"
#include "func/memory.hpp"
#include "isa/basic_block.hpp"
#include "isa/builder.hpp"
#include "timing/cu.hpp"

using namespace photon;
using namespace photon::isa;

namespace {

ProgramPtr
aluKernel(std::uint32_t iters)
{
    KernelBuilder b("alu");
    b.sMov(3, imm(0));
    Label loop = b.label();
    b.bind(loop);
    b.vAddF32(1, vreg(1), immF(1.0f));
    b.vAddF32(2, vreg(2), immF(1.0f));
    b.sAdd(3, sreg(3), imm(1));
    b.emit(Opcode::S_CMP_LT_U32, {}, sreg(3), imm(iters));
    b.branch(Opcode::S_CBRANCH_SCC1, loop);
    b.endProgram();
    return b.finish();
}

ProgramPtr
memKernel(std::uint32_t iters)
{
    KernelBuilder b("mem");
    b.sMov(3, imm(0));
    b.vMad(1, vreg(0), imm(64), imm(64)); // scattered line per lane
    Label loop = b.label();
    b.bind(loop);
    b.flatLoad(2, 1);
    b.vAddU32(1, vreg(1), imm(64 * 64));
    b.sAdd(3, sreg(3), imm(1));
    b.emit(Opcode::S_CMP_LT_U32, {}, sreg(3), imm(iters));
    b.branch(Opcode::S_CBRANCH_SCC1, loop);
    b.endProgram();
    return b.finish();
}

enum class Drive { Tick, Fast, Hint };

struct RunStats
{
    double wallSeconds = 0.0;
    std::uint64_t insts = 0;
    std::uint64_t scans = 0;
    std::uint64_t emptyScans = 0;
    std::uint64_t cycles = 0;
};

/** Run @p prog on a fresh CU until every wave retires; the timed
 *  region is the tick loop only. */
RunStats
runOnce(const GpuConfig &cfg, const Program &prog, Drive drive,
        std::uint32_t workgroups)
{
    timing::MemorySystem memsys(cfg);
    func::Emulator emu;
    timing::ComputeUnit cu(cfg, 0, memsys, emu);

    func::GlobalMemory mem(64ull << 20);
    mem.allocate(32ull << 20);
    func::LaunchDims dims{workgroups, 4, 0};
    BasicBlockTable bb_table(prog);
    timing::KernelContext ctx;
    ctx.program = &prog;
    ctx.bbTable = &bb_table;
    ctx.dims = &dims;
    ctx.mem = &mem;
    cu.startKernel(ctx);

    RunStats r;
    WorkgroupId next_wg = 0;
    Cycle now = 0;
    auto t0 = std::chrono::steady_clock::now();
    while (next_wg < workgroups || !cu.idle()) {
        while (next_wg < workgroups && cu.canAcceptWorkgroup())
            cu.placeWorkgroup(next_wg++, now);
        switch (drive) {
          case Drive::Tick:
            cu.tick(now);
            ++now;
            break;
          case Drive::Fast:
            cu.tickFast(now);
            ++now;
            break;
          case Drive::Hint: {
            timing::ComputeUnit::FastTick ft = cu.tickFast(now);
            now = (ft.hint == kNoCycle || ft.hint <= now)
                      ? now + 1
                      : ft.hint;
            break;
          }
        }
    }
    auto t1 = std::chrono::steady_clock::now();
    r.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
    r.insts = cu.instsIssued();
    r.scans = cu.simdScans();
    r.emptyScans = cu.emptyScans();
    r.cycles = now;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = bench::quickMode(argc, argv);
    const std::uint32_t iters = quick ? 200 : 1000;
    const std::uint32_t workgroups = quick ? 32 : 128;
    GpuConfig cfg = GpuConfig::r9Nano();

    driver::printBanner(std::cout, "SIMD issue/scoreboard loop (1 CU)");
    std::printf("%u workgroups x 4 waves, %u loop iterations; per-cycle\n"
                "ticks except the 'hint' rows, which jump to the CU's\n"
                "next-event hint like the event core does\n\n",
                workgroups, iters);

    struct
    {
        const char *kernel;
        ProgramPtr prog;
    } kernels[] = {
        {"alu", aluKernel(iters)},
        {"mem", memKernel(iters)},
    };
    struct
    {
        const char *name;
        Drive drive;
    } drives[] = {
        {"tick", Drive::Tick},
        {"tickFast", Drive::Fast},
        {"hint", Drive::Hint},
    };

    driver::Table table({"kernel", "drive", "cycles", "insts", "wall_s",
                         "Minst/s", "Mscan/s", "empty%"});
    for (const auto &k : kernels) {
        std::uint64_t ref_insts = 0;
        for (const auto &d : drives) {
            (void)runOnce(cfg, *k.prog, d.drive, workgroups); // warm-up
            RunStats r = runOnce(cfg, *k.prog, d.drive, workgroups);
            if (ref_insts == 0)
                ref_insts = r.insts;
            if (r.insts != ref_insts) {
                std::fprintf(stderr,
                             "FAIL: %s/%s issued %llu insts, tick "
                             "issued %llu\n",
                             k.kernel, d.name,
                             static_cast<unsigned long long>(r.insts),
                             static_cast<unsigned long long>(ref_insts));
                return 1;
            }
            double empty =
                r.scans ? 100.0 * static_cast<double>(r.emptyScans) /
                              static_cast<double>(r.scans)
                        : 0.0;
            table.addRow({k.kernel, d.name, std::to_string(r.cycles),
                          std::to_string(r.insts),
                          driver::Table::num(r.wallSeconds, 3),
                          driver::Table::num(r.insts / r.wallSeconds /
                                             1e6),
                          driver::Table::num(r.scans / r.wallSeconds /
                                             1e6),
                          driver::Table::num(empty)});
        }
    }
    table.print(std::cout);
    std::printf(
        "\nalu rows stress dense ready masks (arbitration throughput);\n"
        "mem rows stress empty scans (the waste the hint jump removes).\n"
        "All drives of one kernel must issue identical instruction\n"
        "counts — the scan layout is observability, not semantics.\n");
    return 0;
}
