/**
 * @file
 * Instruction and operand encodings.
 */

#ifndef PHOTON_ISA_INSTRUCTION_HPP
#define PHOTON_ISA_INSTRUCTION_HPP

#include <bit>
#include <cstdint>

#include "isa/opcode.hpp"

namespace photon::isa {

/** Where an operand's value lives. */
enum class OperandKind : std::uint8_t
{
    None, ///< operand unused
    SReg, ///< scalar register s[value]
    VReg, ///< vector register v[value] (per-lane)
    Mask, ///< 64-bit mask register, see MaskReg
    Imm,  ///< 32-bit immediate (raw bit pattern; may encode a float)
};

/** Indices of the 64-bit mask register space. */
enum MaskReg : std::int32_t
{
    kMask0 = 0,
    kMask1 = 1,
    kMask2 = 2,
    kMask3 = 3,
    kMaskVcc = 4,
    kMaskExec = 5,
    kMaskAllOnes = 6, ///< read-only constant ~0ull
};

/** One instruction operand. */
struct Operand
{
    OperandKind kind = OperandKind::None;
    std::int32_t value = 0;

    constexpr bool isReg() const
    {
        return kind == OperandKind::SReg || kind == OperandKind::VReg;
    }
};

/** Build a scalar-register operand. */
constexpr Operand
sreg(std::int32_t idx)
{
    return {OperandKind::SReg, idx};
}

/** Build a vector-register operand. */
constexpr Operand
vreg(std::int32_t idx)
{
    return {OperandKind::VReg, idx};
}

/** Build a mask-register operand. */
constexpr Operand
mreg(std::int32_t idx)
{
    return {OperandKind::Mask, idx};
}

/** Build an integer immediate operand. */
constexpr Operand
imm(std::int64_t v)
{
    return {OperandKind::Imm, static_cast<std::int32_t>(v)};
}

/** Build a float immediate operand (stored as raw bits). */
inline Operand
immF(float v)
{
    return {OperandKind::Imm, std::bit_cast<std::int32_t>(v)};
}

/**
 * One decoded instruction. Branch targets are instruction indices
 * (PCs count instructions, not bytes) resolved by the KernelBuilder.
 */
struct Instruction
{
    Opcode op = Opcode::S_NOP;
    Operand dst;
    Operand src0;
    Operand src1;
    Operand src2;
    std::int32_t target = -1; ///< branch target PC, -1 when not a branch
};

} // namespace photon::isa

#endif // PHOTON_ISA_INSTRUCTION_HPP
