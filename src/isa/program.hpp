/**
 * @file
 * A kernel program: an immutable instruction list plus resource metadata
 * and a pre-decoded execution stream. Decoding — the functional-unit
 * lookup, and the minimum-issues-to-retirement metric the epoch
 * scheduler needs — happens once at construction, so the per-issue hot
 * path indexes one flat array instead of chasing the opcode table.
 */

#ifndef PHOTON_ISA_PROGRAM_HPP
#define PHOTON_ISA_PROGRAM_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "isa/instruction.hpp"
#include "isa/opcode.hpp"

namespace photon::isa {

/** Register-file and LDS limits enforced on programs. */
inline constexpr unsigned kMaxSgprs = 32;
inline constexpr unsigned kMaxVgprs = 32;
inline constexpr unsigned kMaxMaskRegs = 4;

/** minStepsToEnd value for PCs that cannot reach s_endpgm (an infinite
 *  loop by construction); large but safe to add to a cycle number. */
inline constexpr std::uint32_t kUnreachableEnd = 1u << 30;

/**
 * One pre-decoded instruction: the operands (copied for locality) plus
 * everything the timing model would otherwise re-derive per issue.
 */
struct DecodedInst
{
    Instruction inst;
    FuncUnit unit = FuncUnit::SALU;
    /** Minimum number of issues (this instruction included) until the
     *  wavefront retires, over the shortest control-flow path to any
     *  s_endpgm; kUnreachableEnd when no path exists. Lower-bounds how
     *  soon a wavefront at this PC can free dispatch capacity. */
    std::uint32_t minStepsToEnd = kUnreachableEnd;
};

/**
 * An executable GPU kernel. Produced by KernelBuilder; shared (immutable)
 * between launches via shared_ptr.
 */
class Program
{
  public:
    Program(std::string name, std::vector<Instruction> code,
            std::uint32_t num_sgprs, std::uint32_t num_vgprs,
            std::uint32_t lds_bytes);

    const std::string &name() const { return name_; }
    const std::vector<Instruction> &code() const { return code_; }
    const Instruction &at(std::uint32_t pc) const { return code_[pc]; }
    std::uint32_t size() const
    {
        return static_cast<std::uint32_t>(code_.size());
    }

    /** The pre-decoded execution stream, one entry per PC. */
    const std::vector<DecodedInst> &decoded() const { return decoded_; }
    const DecodedInst &decodedAt(std::uint32_t pc) const
    {
        return decoded_[pc];
    }

    /** Highest scalar register index used, plus one. */
    std::uint32_t numSgprs() const { return numSgprs_; }
    /** Highest vector register index used, plus one. */
    std::uint32_t numVgprs() const { return numVgprs_; }
    /** Static LDS allocation per workgroup in bytes. */
    std::uint32_t ldsBytes() const { return ldsBytes_; }

    /** Content hash over the instruction list (FNV-1a, computed at
     *  construction): two programs with identical code hash equally
     *  regardless of name. Keys the functional trace cache. */
    std::uint64_t codeHash() const { return codeHash_; }

    /** Validate register indices and branch targets; panics on errors. */
    void validate() const;

  private:
    /** Build decoded_ (unit lookup + reverse-BFS minStepsToEnd). */
    void decode();

    std::string name_;
    std::vector<Instruction> code_;
    std::vector<DecodedInst> decoded_;
    std::uint32_t numSgprs_;
    std::uint32_t numVgprs_;
    std::uint32_t ldsBytes_;
    std::uint64_t codeHash_ = 0;
};

using ProgramPtr = std::shared_ptr<const Program>;

} // namespace photon::isa

#endif // PHOTON_ISA_PROGRAM_HPP
