#include "timing/gpu.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <memory>
#include <thread>

#include "isa/basic_block.hpp"
#include "sim/log.hpp"
#include "timing/reference.hpp"

namespace photon::timing {

namespace {

/**
 * Sense-reversing spin barrier. The run loop crosses a barrier twice
 * per simulated cycle, so the futex sleep/wake of std::barrier would
 * dominate; workers here spin (with a yield fallback) because the next
 * cycle's work arrives within microseconds.
 */
class SpinBarrier
{
  public:
    explicit SpinBarrier(std::uint32_t parties)
        : parties_(parties),
          // Spinning only makes sense when every party has its own
          // core; oversubscribed parties must yield the core the
          // others need to make progress.
          spinLimit_(parties <= std::thread::hardware_concurrency()
                         ? 4096u
                         : 0u)
    {}

    void
    arriveAndWait()
    {
        std::uint32_t sense = sense_.load(std::memory_order_relaxed);
        if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            parties_) {
            count_.store(0, std::memory_order_relaxed);
            sense_.store(sense ^ 1, std::memory_order_release);
            return;
        }
        std::uint32_t spins = 0;
        while (sense_.load(std::memory_order_acquire) == sense) {
            if (++spins > spinLimit_) {
                std::this_thread::yield();
                spins = 0;
            }
        }
    }

  private:
    std::uint32_t parties_;
    std::uint32_t spinLimit_;
    std::atomic<std::uint32_t> count_{0};
    std::atomic<std::uint32_t> sense_{0};
};

/**
 * Worker pool ticking CUs in parallel, in one of two rounds:
 *
 * Per-cycle round (run): every thread (main included) executes the
 * front halves of its round-robin shard of the due list — CU-private
 * state only — and after the barrier the main thread commits all queued
 * shared-state effects in ascending cuId order.
 *
 * Epoch round (runEpoch): every thread runs its round-robin shard of
 * ALL CUs independently across a whole [from, to) cycle window
 * (ComputeUnit::runEpoch); the caller replays the queued shared-state
 * records at the boundary. Either way the commit order equals the
 * serial visiting order, so the observable state evolution is
 * bit-identical to a single-threaded run. Both rounds cost exactly two
 * barrier crossings — per cycle in the first case, per epoch in the
 * second.
 */
class EpochPool
{
  public:
    EpochPool(std::vector<ComputeUnit> &cus, std::uint32_t threads)
        : cus_(cus), threads_(threads), start_(threads), finish_(threads)
    {
        for (std::uint32_t t = 0; t + 1 < threads_; ++t)
            workers_.emplace_back([this, t] { workerMain(t); });
    }

    ~EpochPool()
    {
        stop_.store(true, std::memory_order_relaxed);
        start_.arriveAndWait();
        for (std::thread &w : workers_)
            w.join();
    }

    EpochPool(const EpochPool &) = delete;
    EpochPool &operator=(const EpochPool &) = delete;

    /** Tick every CU in @p due (ascending cuId) at @p now; returns the
     *  number of instructions issued across all of them. */
    std::uint32_t
    run(const std::vector<std::uint32_t> &due, Cycle now)
    {
        due_ = &due;
        now_ = now;
        epoch_ = false;
        issued_.assign(due.size(), 0);
        start_.arriveAndWait();
        shard(threads_ - 1); // main thread participates
        finish_.arriveAndWait();
        for (std::uint32_t cu : due)
            cus_[cu].commitPending(now);
        std::uint32_t total = 0;
        for (std::uint32_t v : issued_)
            total += v;
        return total;
    }

    /** Run every CU's epoch front over [from, to); the caller commits
     *  the queued records afterwards. */
    void
    runEpoch(Cycle from, Cycle to)
    {
        now_ = from;
        epochEnd_ = to;
        epoch_ = true;
        start_.arriveAndWait();
        shard(threads_ - 1); // main thread participates
        finish_.arriveAndWait();
    }

  private:
    void
    workerMain(std::uint32_t tid)
    {
        for (;;) {
            start_.arriveAndWait();
            if (stop_.load(std::memory_order_relaxed))
                return;
            shard(tid);
            finish_.arriveAndWait();
        }
    }

    void
    shard(std::uint32_t tid)
    {
        if (epoch_) {
            for (std::size_t c = tid; c < cus_.size(); c += threads_)
                cus_[c].runEpoch(now_, epochEnd_);
            return;
        }
        const std::vector<std::uint32_t> &due = *due_;
        for (std::size_t i = tid; i < due.size(); i += threads_)
            issued_[i] = cus_[due[i]].tickDeferred(now_);
    }

    std::vector<ComputeUnit> &cus_;
    std::uint32_t threads_;
    SpinBarrier start_;
    SpinBarrier finish_;
    std::vector<std::thread> workers_;
    const std::vector<std::uint32_t> *due_ = nullptr;
    Cycle now_ = 0;
    Cycle epochEnd_ = 0;
    bool epoch_ = false; ///< round kind; set before the start barrier
    std::vector<std::uint32_t> issued_; ///< per due-list index
    std::atomic<bool> stop_{false};
};

} // namespace

const char *
kernelPhaseName(KernelPhase phase)
{
    switch (phase) {
      case KernelPhase::Launch: return "launch";
      case KernelPhase::Detailed: return "detailed";
      case KernelPhase::Draining: return "draining";
      case KernelPhase::Complete: return "complete";
    }
    return "?";
}

Gpu::Gpu(const GpuConfig &cfg)
    : cfg_(cfg), memsys_(cfg), dispatcher_(cus_)
{
    cus_.reserve(cfg.numCus);
    for (std::uint32_t i = 0; i < cfg.numCus; ++i)
        cus_.emplace_back(cfg_, i, memsys_, emu_);
    filedAt_.assign(cfg.numCus, kNoCycle);
    cuBusy_.assign(cfg.numCus, 0);
    prevRetired_.assign(cfg.numCus, 0);
    wheelWords_ = (cfg.numCus + 63) / 64;
    wheelBits_.assign(std::size_t{kWheelSize} * wheelWords_, 0);
}

Gpu::~Gpu() = default;

RunOutcome
Gpu::runKernel(const isa::Program &program, const func::LaunchDims &dims,
               func::GlobalMemory &mem, KernelMonitor *monitor,
               const RunOptions &opts)
{
    PHOTON_ASSERT(dims.numWorkgroups > 0, "empty launch");
    PHOTON_ASSERT(dims.wavesPerWorkgroup > 0 &&
                  dims.wavesPerWorkgroup <=
                      cfg_.simdsPerCu * cfg_.wavesPerSimd,
                  "workgroup does not fit in one CU");

    isa::BasicBlockTable bb_table(program, opts.splitBbAtWaitcnt);
    KernelContext ctx;
    ctx.program = &program;
    ctx.bbTable = &bb_table;
    ctx.dims = &dims;
    ctx.mem = &mem;
    ctx.monitor = monitor;
    ctx.replay = opts.replay;
    ctx.codeBase = (1ull << 40) + (kernelSeq_++ << 24);

    // The frozen reference engine has no replay plumbing; callers
    // selecting the seed loop must not request replay (the platform
    // disables trace reuse for seed-loop runs).
    if (opts.useSeedLoop)
        ctx.replay = nullptr;
    if (opts.useSeedLoop) {
        // Frozen AoS per-cycle reference engine: its own CUs and
        // dispatch state, the Gpu's memory system and clock, so the
        // seed and event variants of one platform see identical cache
        // history and stay bit-comparable.
        if (!reference_)
            reference_ = std::make_unique<ReferenceEngine>(cfg_, memsys_,
                                                           emu_);
        if (monitor) {
            monitor->onKernelPhase(KernelPhase::Launch, now_);
            monitor->onKernelPhase(KernelPhase::Detailed, now_);
        }
        RunOutcome out = reference_->run(ctx, monitor, opts, now_);
        if (monitor)
            monitor->onKernelPhase(KernelPhase::Complete, now_);
        out.endCycle = now_;
        if (opts.collectIpcTrace) {
            for (double &v : out.ipcTrace)
                v /= static_cast<double>(opts.ipcBucketCycles);
        }
        ++kernelsRun_;
        activeCyclesTotal_ += out.activeCycles;
        busyCuCyclesTotal_ += out.busyCuCycles;
        waveCyclesTotal_ += out.waveCycles;
        return out;
    }

    for (ComputeUnit &cu : cus_)
        cu.startKernel(ctx);
    dispatcher_.resume();
    dispatcher_.startKernel(dims.numWorkgroups);

    heap_ = EventHeap{};
    std::fill(wheelBits_.begin(), wheelBits_.end(), 0);
    std::fill(filedAt_.begin(), filedAt_.end(), kNoCycle);
    std::fill(cuBusy_.begin(), cuBusy_.end(), 0);
    std::fill(prevRetired_.begin(), prevRetired_.end(), 0);
    activeCuCount_ = 0;
    residentWaveCount_ = 0;
    wavesPerWg_ = dims.wavesPerWorkgroup;

    std::uint32_t threads =
        opts.cuThreads ? opts.cuThreads : cuThreadsDefault_;
    threads = std::max<std::uint32_t>(threads, 1);
    threads = std::min(threads, cfg_.numCus);

    if (monitor) {
        monitor->onKernelPhase(KernelPhase::Launch, now_);
        monitor->onKernelPhase(KernelPhase::Detailed, now_);
    }

    // Epoch synchronization needs monitor-free runs: wantsStop polling
    // and per-instruction callbacks are cycle-accurate channels the
    // multi-cycle window cannot reproduce. The IPC trace samples per
    // cycle for the same reason. Everything else (full-detailed runs,
    // benches) gets the cheap path.
    bool epoch_capable = threads > 1 && monitor == nullptr &&
                         !opts.collectIpcTrace;

    RunOutcome out = epoch_capable
                         ? runEpochLoop(opts, threads)
                         : runEventLoop(monitor, opts, threads);

    if (monitor)
        monitor->onKernelPhase(KernelPhase::Complete, now_);

    out.endCycle = now_;
    out.firstUndispatchedWg = dispatcher_.nextWorkgroup();
    for (const ComputeUnit &cu : cus_) {
        out.instsIssued += cu.instsIssued();
        out.wavesCompleted += cu.wavesRetired();
    }
    if (opts.collectIpcTrace) {
        for (double &v : out.ipcTrace)
            v /= static_cast<double>(opts.ipcBucketCycles);
    }
    ++kernelsRun_;
    activeCyclesTotal_ += out.activeCycles;
    busyCuCyclesTotal_ += out.busyCuCycles;
    waveCyclesTotal_ += out.waveCycles;
    epochsTotal_ += out.epochs;
    epochCyclesTotal_ += out.epochCycleSum;
    barrierCrossingsTotal_ += out.barrierCrossings;
    return out;
}

RunOutcome
Gpu::runEventLoop(KernelMonitor *monitor, const RunOptions &opts,
                  std::uint32_t threads)
{
    RunOutcome out;
    out.startCycle = now_;
    bool stopping = false;

    std::unique_ptr<EpochPool> pool;
    if (threads > 1)
        pool = std::make_unique<EpochPool>(cus_, threads);

    std::vector<std::uint32_t> placed;
    std::vector<std::uint32_t> due;
    placed.reserve(cfg_.numCus);
    due.reserve(cfg_.numCus);

    // Monitor-free single-thread runs take the fused tick: no monitor
    // callbacks or basic-block tracking can be observed, so the CU's
    // tickFast — which skips both and returns the issue/retire/hint
    // summary the bookkeeping below needs — produces the identical
    // simulation schedule while touching the cold CU object only when
    // a retirement actually happened.
    const bool fast = monitor == nullptr && !pool;

    while (true) {
        if (monitor && !stopping && monitor->wantsStop(now_)) {
            stopping = true;
            dispatcher_.halt();
            monitor->onKernelPhase(KernelPhase::Draining, now_);
        }
        if (dispatcher_.wantsDispatch()) {
            placed.clear();
            dispatcher_.tryDispatch(now_, &placed);
            for (std::uint32_t cu : placed) {
                residentWaveCount_ += wavesPerWg_;
                updateBusy(cu);
                fileCu(cu, now_);
            }
        }

        bool any_resident = activeCuCount_ > 0;

        // Pull every CU due this cycle. Entries are lazily invalidated:
        // only the one matching the CU's filing cycle is live. The
        // wheel slot holds exactly this cycle's near events (non-empty
        // slots are never advanced past, so no lap-old bits linger);
        // far events that have come due are merged into the same
        // bitmap, and the bit walk yields ascending cuId order — the
        // serial visiting order — with no sort.
        std::uint64_t *slot =
            &wheelBits_[(now_ & (kWheelSize - 1)) * wheelWords_];
        while (!heap_.empty() && heap_.top().first <= now_) {
            HeapEntry e = heap_.top();
            heap_.pop();
            if (filedAt_[e.second] == e.first)
                slot[e.second / 64] |= std::uint64_t{1}
                                       << (e.second & 63);
        }
        due.clear();
        for (std::uint32_t w = 0; w < wheelWords_; ++w) {
            std::uint64_t m = slot[w];
            slot[w] = 0;
            while (m) {
                std::uint32_t cu =
                    w * 64 +
                    static_cast<std::uint32_t>(std::countr_zero(m));
                m &= m - 1;
                if (filedAt_[cu] == now_) {
                    filedAt_[cu] = kNoCycle;
                    due.push_back(cu);
                }
            }
        }

        std::uint32_t issued = 0;
        if (fast) {
            for (std::uint32_t cu : due) {
                ComputeUnit::FastTick ft = cus_[cu].tickFast(now_);
                issued += ft.issued;
                if (ft.retired) {
                    noteRetirements(cu);
                    updateBusy(cu);
                }
                fileCuAt(cu, ft.hint, now_ + 1);
            }
        } else {
            if (pool && due.size() >= threads) {
                issued = pool->run(due, now_);
                out.barrierCrossings += 2;
            } else {
                for (std::uint32_t cu : due)
                    issued += cus_[cu].tick(now_);
            }
            for (std::uint32_t cu : due) {
                noteRetirements(cu);
                updateBusy(cu);
                fileCu(cu, now_ + 1);
            }
        }

        if (issued > 0)
            addIpcSample(out, opts, now_, issued);

        bool done = !any_resident &&
                    (dispatcher_.allDispatched() || stopping);
        if (done)
            break;

        Cycle next;
        if (issued == 0) {
            // Earliest filed event: first occupied wheel slot ahead of
            // now, or the heap top. Either may be stale, which only
            // makes the jump shorter (a spurious, side-effect-free
            // visit), never longer.
            Cycle cand = kNoCycle;
            for (Cycle d = 1; d < kWheelSize; ++d) {
                const std::uint64_t *s =
                    &wheelBits_[((now_ + d) & (kWheelSize - 1)) *
                                wheelWords_];
                std::uint64_t any = 0;
                for (std::uint32_t w = 0; w < wheelWords_; ++w)
                    any |= s[w];
                if (any) {
                    cand = now_ + d;
                    break;
                }
            }
            if (!heap_.empty())
                cand = std::min(cand, heap_.top().first);
            next = (cand == kNoCycle) ? now_ + 1
                                      : std::max(now_ + 1, cand);
        } else {
            next = now_ + 1;
        }
        accountAdvance(out, next - now_);
        now_ = next;
    }

    out.stoppedEarly = stopping;
    return out;
}

RunOutcome
Gpu::runEpochLoop(const RunOptions &opts, std::uint32_t threads)
{
    RunOutcome out;
    out.startCycle = now_;

    EpochPool pool(cus_, threads);
    const Cycle lmin = memsys_.minSharedLatency();
    Cycle cap = opts.maxEpochCycles ? opts.maxEpochCycles
                                    : epochCapDefault_;

    std::vector<std::uint32_t> placed;
    placed.reserve(cfg_.numCus);
    epochCursor_.assign(cfg_.numCus, 0);

    const std::uint32_t n_cus = cfg_.numCus;
    while (true) {
        if (dispatcher_.wantsDispatch()) {
            placed.clear();
            dispatcher_.tryDispatch(now_, &placed);
            for (std::uint32_t cu : placed) {
                residentWaveCount_ += wavesPerWg_;
                updateBusy(cu);
            }
        }

        if (activeCuCount_ == 0) {
            // Same termination as the per-cycle loops: nothing resident
            // after dispatching means the kernel is done.
            if (dispatcher_.allDispatched())
                break;
            // Resident work exhausted but workgroups remain: dispatch
            // capacity must free next cycle (cannot happen — a retiring
            // wave leaves capacity checked at this cycle). Advance.
            now_ += 1;
            continue;
        }

        // --- Safe horizon -------------------------------------------
        // base: earliest cycle at which any CU can issue. No shared
        // effect produced at cycle c >= base becomes observable to
        // another wavefront before c + lmin, so every CU may tick
        // independently until base + lmin. Retirements additionally
        // must land on the final epoch cycle only (they free dispatch
        // capacity and change the occupancy integrals mid-loop in the
        // serial schedule), so the horizon also respects the earliest
        // possible retirement + 1.
        Cycle base = kNoCycle;
        for (std::uint32_t c = 0; c < n_cus; ++c) {
            if (!cus_[c].idle())
                base = std::min(base, cus_[c].nextHint());
        }
        if (base == kNoCycle) {
            // Every resident wavefront is barrier-blocked: a deadlocked
            // kernel. Mirror the serial loops' behavior (spin forward).
            now_ += 1;
            continue;
        }
        base = std::max(base, now_);

        Cycle horizon = base + lmin;
        for (std::uint32_t c = 0; c < n_cus; ++c) {
            if (!cus_[c].idle())
                horizon = std::min(horizon,
                                   cus_[c].epochRetireBound(base));
        }
        if (cap)
            horizon = std::min(horizon, base + cap);
        horizon = std::max(horizon, now_ + 1);

        // --- Parallel front over [base, horizon) --------------------
        pool.runEpoch(base, horizon);
        out.barrierCrossings += 2;
        ++out.epochs;
        out.epochCycleSum += horizon - base;

        // --- Boundary: replay shared effects in serial order --------
        std::fill(epochCursor_.begin(), epochCursor_.end(), 0);
        for (Cycle c = base; c < horizon; ++c) {
            for (std::uint32_t cu = 0; cu < n_cus; ++cu) {
                std::uint32_t &cur = epochCursor_[cu];
                const std::uint32_t count = cus_[cu].epochRecordCount();
                while (cur < count &&
                       cus_[cu].epochRecordCycle(cur) == c) {
                    cus_[cu].commitEpochRecord(cur);
                    ++cur;
                }
            }
        }
        for (std::uint32_t cu = 0; cu < n_cus; ++cu)
            cus_[cu].finishEpochCommit();

        // --- Accounting, matching the serial piecewise integrals ----
        // Occupancy is constant from now_ until the epoch's final cycle
        // (retirements cannot land earlier by the horizon bound), then
        // the final cycle is accounted with post-retirement counts —
        // exactly the serial post-tick accounting at horizon - 1.
        accountAdvance(out, horizon - 1 - now_);
        for (std::uint32_t cu = 0; cu < n_cus; ++cu) {
            noteRetirements(cu);
            updateBusy(cu);
        }
        accountAdvance(out, 1);
        now_ = horizon;
    }

    return out;
}

void
Gpu::fileCu(std::uint32_t cu, Cycle floor)
{
    fileCuAt(cu, cus_[cu].nextHint(), floor);
}

void
Gpu::fileCuAt(std::uint32_t cu, Cycle h, Cycle floor)
{
    if (h == kNoCycle) {
        filedAt_[cu] = kNoCycle;
        return;
    }
    if (h < floor)
        h = floor;
    // An earlier live entry already wakes the CU no later than h; the
    // wake refreshes the hint and refiles, so events are never missed.
    if (filedAt_[cu] != kNoCycle && filedAt_[cu] <= h)
        return;
    filedAt_[cu] = h;
    if (h - now_ < kWheelSize) {
        wheelBits_[(h & (kWheelSize - 1)) * wheelWords_ + cu / 64] |=
            std::uint64_t{1} << (cu & 63);
    } else {
        heap_.push({h, cu});
    }
}

void
Gpu::updateBusy(std::uint32_t cu)
{
    std::uint8_t b = cus_[cu].idle() ? 0 : 1;
    if (b == cuBusy_[cu])
        return;
    cuBusy_[cu] = b;
    if (b)
        ++activeCuCount_;
    else
        --activeCuCount_;
}

void
Gpu::noteRetirements(std::uint32_t cu)
{
    std::uint32_t r = cus_[cu].wavesRetired();
    std::uint32_t delta = r - prevRetired_[cu];
    if (delta == 0)
        return;
    prevRetired_[cu] = r;
    residentWaveCount_ -= delta;
    dispatcher_.notifyCapacityFreed();
}

void
Gpu::addIpcSample(RunOutcome &out, const RunOptions &opts, Cycle now,
                  std::uint32_t issued)
{
    if (!opts.collectIpcTrace)
        return;
    std::size_t bucket = (now - out.startCycle) / opts.ipcBucketCycles;
    if (out.ipcTrace.size() <= bucket)
        out.ipcTrace.resize(bucket + 1, 0.0);
    out.ipcTrace[bucket] += issued;
}

void
Gpu::accountAdvance(RunOutcome &out, Cycle dt) const
{
    if (activeCuCount_ == 0)
        return;
    out.activeCycles += dt;
    out.busyCuCycles += dt * activeCuCount_;
    out.waveCycles += dt * residentWaveCount_;
}

void
Gpu::exportStats(StatRegistry &stats) const
{
    memsys_.exportStats(stats);
    stats.set("gpu.now_cycles", static_cast<double>(now_));
    stats.set("gpu.kernels", static_cast<double>(kernelsRun_));
    stats.set("gpu.active_cycles",
              static_cast<double>(activeCyclesTotal_));
    stats.set("gpu.busy_cu_cycles",
              static_cast<double>(busyCuCyclesTotal_));
    stats.set("gpu.wave_cycles", static_cast<double>(waveCyclesTotal_));
    stats.set("gpu.epochs", static_cast<double>(epochsTotal_));
    stats.set("gpu.epoch_cycles", static_cast<double>(epochCyclesTotal_));
    stats.set("gpu.barrier_crossings",
              static_cast<double>(barrierCrossingsTotal_));
    if (epochsTotal_ > 0)
        stats.set("gpu.mean_epoch_cycles",
                  static_cast<double>(epochCyclesTotal_) /
                      static_cast<double>(epochsTotal_));
    if (activeCyclesTotal_ > 0) {
        stats.set("gpu.avg_busy_cus",
                  static_cast<double>(busyCuCyclesTotal_) /
                      static_cast<double>(activeCyclesTotal_));
        stats.set("gpu.avg_resident_waves",
                  static_cast<double>(waveCyclesTotal_) /
                      static_cast<double>(activeCyclesTotal_));
    }
}

} // namespace photon::timing
