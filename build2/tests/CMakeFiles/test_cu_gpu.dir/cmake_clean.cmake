file(REMOVE_RECURSE
  "CMakeFiles/test_cu_gpu.dir/test_cu_gpu.cpp.o"
  "CMakeFiles/test_cu_gpu.dir/test_cu_gpu.cpp.o.d"
  "test_cu_gpu"
  "test_cu_gpu.pdb"
  "test_cu_gpu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cu_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
