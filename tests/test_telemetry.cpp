/** @file Tests for the per-kernel telemetry spine: deterministic JSON /
 *  CSV serialization, the schema-versioned round trip (current schema
 *  plus v1-document compatibility), and telemetry persistence through
 *  the binary artifact store (v3, with v1/v2 load compatibility). */

#include <gtest/gtest.h>

#include <sstream>

#include "sampling/telemetry.hpp"
#include "service/artifact_store.hpp"

using namespace photon;
using namespace photon::sampling;

namespace {

KernelTelemetry
sampleRecord()
{
    KernelTelemetry t;
    t.kernel = "mm_tiled";
    t.job = "mm/256/photon/r9nano";
    t.numWorkgroups = 64;
    t.wavesPerWorkgroup = 4;
    t.level = SampleLevel::Warp;
    t.switchCycle = 31408;
    t.residentAtSwitch = 40;
    t.warpDetector.points = 2048;
    t.warpDetector.slope = 0.98765432109876543;
    t.warpDetector.slopeValid = true;
    t.warpDetector.drift = -0.0123456789;
    t.warpDetector.meanRecent = 512.25;
    t.warpDetector.meanPrev = 518.5;
    t.warpDetector.stable = true;
    t.bbStableRate = 0.875;
    t.predictedCycles = 112303;
    t.predictedInsts = 1195852;
    t.detailedCycles = 31408;
    t.detailedInsts = 245760;
    t.detailedWarps = 96;
    t.totalWarps = 256;
    t.analysisInsts = 4096;
    t.analysisReused = false;
    t.wallSeconds = 1.2345678901234567;
    t.epochs = 321;
    t.epochCycles = 2568;
    t.barrierCrossings = 642;
    // v4 fields: every slot non-default so the round-trips exercise
    // them independently (hasDetailedStats stays true to match the
    // nonzero epoch counters above — the JSON writer nulls those out
    // for a record that says it never ran the detailed core).
    // "interval" is 8 chars like the default, keeping the v4 tail at
    // 32 bytes (the loader-compat tests below rely on that size).
    t.backend = "interval";
    t.backendDetailedCycles = 31408;
    t.backendIntervalCycles = 80895;
    t.hasDetailedStats = true;
    return t;
}

void
expectEqual(const KernelTelemetry &a, const KernelTelemetry &b)
{
    EXPECT_EQ(a.kernel, b.kernel);
    EXPECT_EQ(a.job, b.job);
    EXPECT_EQ(a.numWorkgroups, b.numWorkgroups);
    EXPECT_EQ(a.wavesPerWorkgroup, b.wavesPerWorkgroup);
    EXPECT_EQ(a.level, b.level);
    EXPECT_EQ(a.switchCycle, b.switchCycle);
    EXPECT_EQ(a.residentAtSwitch, b.residentAtSwitch);
    EXPECT_EQ(a.warpDetector.points, b.warpDetector.points);
    EXPECT_EQ(a.warpDetector.slope, b.warpDetector.slope);
    EXPECT_EQ(a.warpDetector.slopeValid, b.warpDetector.slopeValid);
    EXPECT_EQ(a.warpDetector.drift, b.warpDetector.drift);
    EXPECT_EQ(a.warpDetector.meanRecent, b.warpDetector.meanRecent);
    EXPECT_EQ(a.warpDetector.meanPrev, b.warpDetector.meanPrev);
    EXPECT_EQ(a.warpDetector.stable, b.warpDetector.stable);
    EXPECT_EQ(a.bbStableRate, b.bbStableRate);
    EXPECT_EQ(a.predictedCycles, b.predictedCycles);
    EXPECT_EQ(a.predictedInsts, b.predictedInsts);
    EXPECT_EQ(a.detailedCycles, b.detailedCycles);
    EXPECT_EQ(a.detailedInsts, b.detailedInsts);
    EXPECT_EQ(a.detailedWarps, b.detailedWarps);
    EXPECT_EQ(a.totalWarps, b.totalWarps);
    EXPECT_EQ(a.analysisInsts, b.analysisInsts);
    EXPECT_EQ(a.analysisReused, b.analysisReused);
    EXPECT_EQ(a.wallSeconds, b.wallSeconds);
    EXPECT_EQ(a.epochs, b.epochs);
    EXPECT_EQ(a.epochCycles, b.epochCycles);
    EXPECT_EQ(a.barrierCrossings, b.barrierCrossings);
    EXPECT_EQ(a.backend, b.backend);
    EXPECT_EQ(a.backendDetailedCycles, b.backendDetailedCycles);
    EXPECT_EQ(a.backendIntervalCycles, b.backendIntervalCycles);
    EXPECT_EQ(a.hasDetailedStats, b.hasDetailedStats);
}

} // namespace

TEST(Telemetry, LevelNamesRoundTrip)
{
    EXPECT_STREQ(sampleLevelName(SampleLevel::Full), "full");
    EXPECT_STREQ(sampleLevelName(SampleLevel::Kernel), "kernel");
    EXPECT_STREQ(sampleLevelName(SampleLevel::Warp), "warp");
    EXPECT_STREQ(sampleLevelName(SampleLevel::BasicBlock), "bb");
}

TEST(Telemetry, JsonRoundTripIsBitExact)
{
    std::vector<KernelTelemetry> records = {sampleRecord()};
    KernelTelemetry full;
    full.kernel = "relu";
    full.level = SampleLevel::Full;
    full.totalWarps = 16;
    full.detailedWarps = 16;
    records.push_back(full);

    std::ostringstream os;
    writeTelemetryJson(records, os);
    std::string doc = os.str();
    EXPECT_NE(doc.find("\"schema_version\": " +
                       std::to_string(kTelemetrySchemaVersion)),
              std::string::npos);
    EXPECT_NE(doc.find("\"wall_seconds\""), std::string::npos);
    EXPECT_NE(doc.find("\"epochs\""), std::string::npos);

    std::vector<KernelTelemetry> parsed;
    std::string err;
    ASSERT_TRUE(readTelemetryJson(doc, parsed, &err)) << err;
    ASSERT_EQ(parsed.size(), records.size());
    for (std::size_t i = 0; i < records.size(); ++i)
        expectEqual(records[i], parsed[i]);

    // Writers are deterministic: re-serializing the parsed records
    // reproduces the document byte for byte.
    std::ostringstream os2;
    writeTelemetryJson(parsed, os2);
    EXPECT_EQ(doc, os2.str());
}

TEST(Telemetry, EmptyDocumentRoundTrips)
{
    std::ostringstream os;
    writeTelemetryJson({}, os);
    std::vector<KernelTelemetry> parsed;
    ASSERT_TRUE(readTelemetryJson(os.str(), parsed));
    EXPECT_TRUE(parsed.empty());
}

TEST(Telemetry, ReaderRejectsSchemaMismatchAndJunk)
{
    std::vector<KernelTelemetry> out;
    std::string err;
    EXPECT_FALSE(readTelemetryJson(
        "{\"schema_version\": 999, \"kernels\": []}", out, &err));
    EXPECT_NE(err.find("schema version"), std::string::npos);

    EXPECT_FALSE(readTelemetryJson("{\"kernels\": []}", out, &err));
    EXPECT_FALSE(readTelemetryJson("not json", out, &err));
    EXPECT_FALSE(readTelemetryJson(
        "{\"schema_version\": 1, \"kernels\": [{\"level\": \"bogus\"}]}",
        out, &err));
}

TEST(Telemetry, ReaderSkipsUnknownKeysForForwardCompat)
{
    std::string doc =
        "{\"schema_version\": 1, \"future_field\": {\"x\": [1, 2]},\n"
        " \"kernels\": [{\"kernel\": \"k\", \"extra\": \"ignored\","
        " \"total_warps\": 8}]}";
    std::vector<KernelTelemetry> parsed;
    std::string err;
    ASSERT_TRUE(readTelemetryJson(doc, parsed, &err)) << err;
    ASSERT_EQ(parsed.size(), 1u);
    EXPECT_EQ(parsed[0].kernel, "k");
    EXPECT_EQ(parsed[0].totalWarps, 8u);
}

/** Schema v1 documents (no wall_seconds / epoch statistics) still load;
 *  the absent fields stay at their zero defaults. */
TEST(Telemetry, V1DocumentLoadsWithZeroEpochStats)
{
    std::string doc =
        "{\"schema_version\": 1, \"kernels\": [{\"kernel\": \"k\","
        " \"total_warps\": 8, \"predicted_cycles\": 100}]}";
    std::vector<KernelTelemetry> parsed;
    std::string err;
    ASSERT_TRUE(readTelemetryJson(doc, parsed, &err)) << err;
    ASSERT_EQ(parsed.size(), 1u);
    EXPECT_EQ(parsed[0].predictedCycles, 100u);
    EXPECT_EQ(parsed[0].wallSeconds, 0.0);
    EXPECT_EQ(parsed[0].epochs, 0u);
    EXPECT_EQ(parsed[0].epochCycles, 0u);
    EXPECT_EQ(parsed[0].barrierCrossings, 0u);
}

TEST(Telemetry, CsvCarriesSchemaVersionHeader)
{
    std::ostringstream os;
    writeTelemetryCsv({sampleRecord()}, os);
    std::string csv = os.str();
    EXPECT_EQ(csv.rfind("# telemetry_schema_version=" +
                            std::to_string(kTelemetrySchemaVersion),
                        0),
              0u);
    EXPECT_NE(csv.find("kernel,job,workgroups"), std::string::npos);
    EXPECT_NE(csv.find("mm_tiled,"), std::string::npos);
    EXPECT_NE(csv.find(",warp,"), std::string::npos);
}

TEST(Telemetry, DetailedFractionDefinition)
{
    KernelTelemetry t;
    EXPECT_EQ(t.detailedFraction(), 1.0); // no warps: conservatively full
    t.totalWarps = 200;
    t.detailedWarps = 50;
    EXPECT_NEAR(t.detailedFraction(), 0.25, 1e-12);
}

TEST(Telemetry, ArtifactStorePersistsTelemetry)
{
    service::Artifact art;
    service::StoreGroup &g = art.group("r9nano");
    g.telemetry.push_back(sampleRecord());
    ASSERT_EQ(art.numTelemetryRecords(), 1u);

    std::string bytes = service::serializeArtifact(art);
    service::Artifact back;
    service::LoadStatus st = service::deserializeArtifact(bytes, back);
    ASSERT_TRUE(st.ok) << st.error;
    ASSERT_EQ(back.numTelemetryRecords(), 1u);
    expectEqual(g.telemetry[0], back.groups.at("r9nano").telemetry[0]);
}

TEST(Telemetry, ArtifactLoaderStillAcceptsV1)
{
    // A v1 artifact is the current layout minus the per-group telemetry
    // section and the trailing v5 trace section; synthesize one by
    // patching the version field of an empty-group artifact and
    // dropping the trailing trace count + telemetry count.
    service::Artifact art;
    art.group("tiny"); // one empty group
    std::string bytes = service::serializeArtifact(art);
    ASSERT_GE(bytes.size(), 8u + 8u);
    bytes[4] = 1;                              // version -> 1
    bytes.resize(bytes.size() - 8);            // drop trace+telemetry counts
    service::Artifact back;
    service::LoadStatus st = service::deserializeArtifact(bytes, back);
    ASSERT_TRUE(st.ok) << st.error;
    EXPECT_EQ(back.groups.size(), 1u);
    EXPECT_EQ(back.numTelemetryRecords(), 0u);
}

TEST(Telemetry, ArtifactLoaderStillAcceptsV2)
{
    // v2 telemetry records end after the analysis_reused flag. Behind
    // it sit the v3 additions (wall_seconds + three epoch counters =
    // 32 bytes) and the v4 additions (backend string "interval" = 12
    // bytes, two cycle counters, the detailed-stats flag = 32 bytes).
    // Synthesize a v2 artifact by patching the version and truncating
    // both tails off the last record.
    service::Artifact art;
    art.group("tiny").telemetry.push_back(sampleRecord());
    std::string bytes = service::serializeArtifact(art);
    ASSERT_GE(bytes.size(), 8u + 68u);
    bytes[4] = 2;                              // version -> 2
    bytes.resize(bytes.size() - 68);           // drop v3+v4 tails + v5 traces
    service::Artifact back;
    service::LoadStatus st = service::deserializeArtifact(bytes, back);
    ASSERT_TRUE(st.ok) << st.error;
    ASSERT_EQ(back.numTelemetryRecords(), 1u);
    const KernelTelemetry &t = back.groups.at("tiny").telemetry[0];
    EXPECT_EQ(t.kernel, "mm_tiled");
    EXPECT_EQ(t.predictedCycles, 112303u);
    EXPECT_EQ(t.wallSeconds, 0.0);   // v3 fields default to zero
    EXPECT_EQ(t.epochs, 0u);
    EXPECT_EQ(t.barrierCrossings, 0u);
    // v4 fields keep their declared defaults: a pre-backend record is
    // a detailed-core record with full detailed statistics.
    EXPECT_EQ(t.backend, "detailed");
    EXPECT_EQ(t.backendDetailedCycles, 0u);
    EXPECT_EQ(t.backendIntervalCycles, 0u);
    EXPECT_TRUE(t.hasDetailedStats);
}

TEST(Telemetry, ArtifactLoaderStillAcceptsV3)
{
    // A v3 record ends after the epoch counters; the v4 backend tail
    // ("interval" string + cycle split + flag = 32 bytes) follows it.
    service::Artifact art;
    art.group("tiny").telemetry.push_back(sampleRecord());
    std::string bytes = service::serializeArtifact(art);
    ASSERT_GE(bytes.size(), 8u + 36u);
    bytes[4] = 3;                              // version -> 3
    bytes.resize(bytes.size() - 36);           // drop v4 tail + v5 traces
    service::Artifact back;
    service::LoadStatus st = service::deserializeArtifact(bytes, back);
    ASSERT_TRUE(st.ok) << st.error;
    ASSERT_EQ(back.numTelemetryRecords(), 1u);
    const KernelTelemetry &t = back.groups.at("tiny").telemetry[0];
    EXPECT_EQ(t.wallSeconds, 1.2345678901234567); // v3 fields kept
    EXPECT_EQ(t.epochs, 321u);
    EXPECT_EQ(t.backend, "detailed"); // v4 defaults: detailed record
    EXPECT_TRUE(t.hasDetailedStats);
}
