/**
 * @file
 * PKA (Principal Kernel Analysis, Baddouh et al., MICRO 2021) baseline,
 * re-implemented from its description as the paper does (Section 6.1):
 *
 *  - Intra-kernel: GPU IPC is monitored over a sliding window (3000
 *    cycles, sampled in 100-cycle buckets, normalised per CU). When the
 *    variance drops below s = 0.25 the detailed simulation stops and the
 *    remaining instructions are extrapolated at the stable IPC. The
 *    remaining instruction count comes from functional simulation of the
 *    remaining warps (PKA's profiling step, charged to wall time here).
 *  - Inter-kernel (principal kernel selection): kernels with the same
 *    name and launch geometry reuse the first instance's measured time.
 */

#ifndef PHOTON_SAMPLING_PKA_HPP
#define PHOTON_SAMPLING_PKA_HPP

#include <cstdint>
#include <string>
#include <unordered_map>

#include "func/memory.hpp"
#include "func/wave_state.hpp"
#include "isa/program.hpp"
#include "sampling/photon.hpp"
#include "sim/config.hpp"
#include "timing/gpu.hpp"

namespace photon::sampling {

/** The PKA baseline sampler, wrapping the same detailed Gpu. */
class PkaSampler
{
  public:
    PkaSampler(timing::Gpu &gpu, const SamplingConfig &cfg);

    /** Run (or skip / truncate) one kernel with the PKA methodology. */
    KernelRunResult runKernel(const isa::Program &program,
                              const func::LaunchDims &dims,
                              func::GlobalMemory &mem);

    const SamplingConfig &config() const { return cfg_; }

  private:
    struct PkRecord
    {
        Cycle cycles = 0;
        std::uint64_t insts = 0;
    };

    timing::Gpu &gpu_;
    SamplingConfig cfg_;
    std::unordered_map<std::string, PkRecord> principals_;
};

} // namespace photon::sampling

#endif // PHOTON_SAMPLING_PKA_HPP
