#include "workloads/dnn/layers.hpp"

#include <algorithm>

#include "sim/log.hpp"
#include "workloads/common.hpp"

namespace photon::workloads::dnn {

namespace {

using namespace photon::isa;

std::uint32_t
log2of(std::uint32_t v)
{
    PHOTON_ASSERT(v > 0 && (v & (v - 1)) == 0, "dimension ", v,
                  " must be a power of two");
    std::uint32_t l = 0;
    while ((1u << l) < v)
        ++l;
    return l;
}

/** Round a logical element count up to whole wavefronts. */
std::uint32_t
warpAlign(std::uint32_t n)
{
    return (n + 63) / 64 * 64;
}

/** Launch geometry used by all DNN kernels: workgroups of up to 4
 *  wavefronts over a warp-aligned thread count. */
std::uint32_t
wgSizeFor(std::uint32_t threads)
{
    return std::min<std::uint32_t>(256, warpAlign(threads));
}

} // namespace

isa::ProgramPtr
buildConv(const ConvParams &p)
{
    const std::uint32_t ow = p.outW(), oh = p.outH();
    const std::uint32_t log_ow = log2of(ow), log_oh = log2of(oh);
    const std::uint32_t k = p.kernel;
    const bool guard = p.pad > 0;
    const std::uint32_t threads = p.outputCount();

    KernelBuilder b("conv" + std::to_string(k) + "x" + std::to_string(k) +
                    "s" + std::to_string(p.stride) + "_c" +
                    std::to_string(p.inC) + "x" + std::to_string(p.outC) +
                    "_" + std::to_string(p.inH));
    b.sLoad(3, kSgprKernargBase, 0); // in
    b.sLoad(4, kSgprKernargBase, 4); // w
    b.sLoad(5, kSgprKernargBase, 8); // out
    emitTid(b, wgSizeFor(threads), 1);

    b.emit(Opcode::V_AND_B32, vreg(2), vreg(1), imm(ow - 1));       // ox
    b.emit(Opcode::V_LSHR_B32, vreg(3), vreg(1), imm(log_ow));
    b.emit(Opcode::V_AND_B32, vreg(3), vreg(3), imm(oh - 1));       // oy
    b.emit(Opcode::V_LSHR_B32, vreg(4), vreg(1), imm(log_ow + log_oh)); // oc
    b.vMov(5, immF(0.0f)); // acc
    b.sMov(8, imm(0));     // ic

    Label loop = b.label();
    b.bind(loop);
    for (std::uint32_t ky = 0; ky < k; ++ky) {
        for (std::uint32_t kx = 0; kx < k; ++kx) {
            std::int32_t dy = static_cast<std::int32_t>(ky) -
                              static_cast<std::int32_t>(p.pad);
            std::int32_t dx = static_cast<std::int32_t>(kx) -
                              static_cast<std::int32_t>(p.pad);
            // iy = oy*stride + dy, ix = ox*stride + dx (unsigned wrap
            // makes out-of-range negatives huge, so one < test guards
            // both ends).
            b.vMad(6, vreg(3), imm(p.stride), imm(dy));
            b.vMad(7, vreg(2), imm(p.stride), imm(dx));
            if (guard) {
                b.emit(Opcode::V_CMP_LT_U32, {}, vreg(6), imm(p.inH));
                b.emit(Opcode::S_MOV_MASK, mreg(kMask1), mreg(kMaskVcc));
                b.emit(Opcode::V_CMP_LT_U32, {}, vreg(7), imm(p.inW));
                b.emit(Opcode::S_AND_MASK, mreg(kMask1), mreg(kMask1),
                       mreg(kMaskVcc));
            }
            // input offset = (ic*inH + iy)*inW + ix
            b.vMad(8, vreg(6), imm(p.inW), vreg(7));
            b.vMad(8, sreg(8), imm(p.inH * p.inW), vreg(8));
            b.vMad(8, vreg(8), imm(4), sreg(3));
            if (guard) {
                b.emit(Opcode::S_MOV_MASK, mreg(kMaskVcc), mreg(kMask1));
                b.emit(Opcode::V_CNDMASK_B32, vreg(8), sreg(3), vreg(8));
            }
            b.flatLoad(9, 8);
            // weight offset = ((oc*inC + ic)*k + ky)*k + kx
            b.vMulU32(10, vreg(4), imm(p.inC * k * k));
            b.vMad(10, sreg(8), imm(k * k), vreg(10));
            b.vAddU32(10, vreg(10), imm(ky * k + kx));
            b.vMad(10, vreg(10), imm(4), sreg(4));
            b.flatLoad(11, 10);
            b.waitcnt();
            if (guard)
                b.emit(Opcode::V_CNDMASK_B32, vreg(9), immF(0.0f),
                       vreg(9));
            b.vMacF32(5, vreg(9), vreg(11));
        }
    }
    b.sAdd(8, sreg(8), imm(1));
    b.emit(Opcode::S_CMP_LT_U32, {}, sreg(8), imm(p.inC));
    b.branch(Opcode::S_CBRANCH_SCC1, loop);

    b.vMad(12, vreg(1), imm(4), sreg(5));
    b.flatStore(12, vreg(5));
    b.endProgram();
    return b.finish();
}

isa::ProgramPtr
buildMaxPool(std::uint32_t c, std::uint32_t in_h, std::uint32_t in_w)
{
    const std::uint32_t oh = in_h / 2, ow = in_w / 2;
    const std::uint32_t log_ow = log2of(ow), log_oh = log2of(oh);
    const std::uint32_t threads = c * oh * ow;

    KernelBuilder b("maxpool_c" + std::to_string(c) + "_" +
                    std::to_string(in_h));
    b.sLoad(3, kSgprKernargBase, 0); // in
    b.sLoad(4, kSgprKernargBase, 4); // out
    emitTid(b, wgSizeFor(threads), 1);

    b.emit(Opcode::V_AND_B32, vreg(2), vreg(1), imm(ow - 1));
    b.emit(Opcode::V_LSHR_B32, vreg(3), vreg(1), imm(log_ow));
    b.emit(Opcode::V_AND_B32, vreg(3), vreg(3), imm(oh - 1));
    b.emit(Opcode::V_LSHR_B32, vreg(4), vreg(1), imm(log_ow + log_oh));

    // base = ((ch*inH + 2*oy)*inW + 2*ox)*4 + in
    b.emit(Opcode::V_LSHL_B32, vreg(5), vreg(3), imm(1));
    b.vMad(5, vreg(4), imm(in_h), vreg(5));
    b.vMulU32(5, vreg(5), imm(in_w));
    b.emit(Opcode::V_LSHL_B32, vreg(6), vreg(2), imm(1));
    b.vAddU32(5, vreg(5), vreg(6));
    b.vMad(5, vreg(5), imm(4), sreg(3));

    b.flatLoad(7, 5);
    b.vAddU32(5, vreg(5), imm(4));
    b.flatLoad(8, 5);
    b.vAddU32(5, vreg(5), imm(in_w * 4 - 4));
    b.flatLoad(9, 5);
    b.vAddU32(5, vreg(5), imm(4));
    b.flatLoad(10, 5);
    b.waitcnt();
    b.emit(Opcode::V_MAX_F32, vreg(7), vreg(7), vreg(8));
    b.emit(Opcode::V_MAX_F32, vreg(9), vreg(9), vreg(10));
    b.emit(Opcode::V_MAX_F32, vreg(7), vreg(7), vreg(9));

    b.vMad(11, vreg(1), imm(4), sreg(4));
    b.flatStore(11, vreg(7));
    b.endProgram();
    return b.finish();
}

isa::ProgramPtr
buildGlobalAvgPool(std::uint32_t c, std::uint32_t in_h, std::uint32_t in_w)
{
    const std::uint32_t hw = in_h * in_w;
    KernelBuilder b("gavgpool_c" + std::to_string(c));
    b.sLoad(3, kSgprKernargBase, 0); // in
    b.sLoad(4, kSgprKernargBase, 4); // out
    emitTid(b, wgSizeFor(warpAlign(c)), 1);
    Label end = b.label();
    emitGuardLt(b, 1, imm(c), end);

    b.vMulU32(2, vreg(1), imm(hw));
    b.vMad(2, vreg(2), imm(4), sreg(3)); // &in[ch*hw]
    b.vMov(3, immF(0.0f));
    b.sMov(8, imm(0));

    Label loop = b.label();
    b.bind(loop);
    b.flatLoad(4, 2);
    b.waitcnt();
    b.vAddF32(3, vreg(3), vreg(4));
    b.vAddU32(2, vreg(2), imm(4));
    b.sAdd(8, sreg(8), imm(1));
    b.emit(Opcode::S_CMP_LT_U32, {}, sreg(8), imm(hw));
    b.branch(Opcode::S_CBRANCH_SCC1, loop);

    b.vMulF32(3, vreg(3), immF(1.0f / static_cast<float>(hw)));
    b.vMad(5, vreg(1), imm(4), sreg(4));
    b.flatStore(5, vreg(3));
    b.bind(end);
    b.endProgram();
    return b.finish();
}

isa::ProgramPtr
buildDense(std::uint32_t in_n, std::uint32_t out_n)
{
    KernelBuilder b("dense_" + std::to_string(in_n) + "x" +
                    std::to_string(out_n));
    b.sLoad(3, kSgprKernargBase, 0); // in
    b.sLoad(4, kSgprKernargBase, 4); // w
    b.sLoad(5, kSgprKernargBase, 8); // out
    emitTid(b, wgSizeFor(warpAlign(out_n)), 1);
    Label end = b.label();
    emitGuardLt(b, 1, imm(out_n), end);

    b.vMad(2, vreg(1), imm(in_n * 4), sreg(4)); // &w[o][0]
    b.vMov(3, immF(0.0f));                      // acc
    b.sMov(8, imm(0));                          // i
    b.sMov(9, sreg(3));                         // &in[i]

    Label loop = b.label();
    b.bind(loop);
    b.sLoad(10, 9, 0);
    b.flatLoad(4, 2);
    b.waitcnt();
    b.vMacF32(3, vreg(4), sreg(10));
    b.vAddU32(2, vreg(2), imm(4));
    b.sAdd(9, sreg(9), imm(4));
    b.sAdd(8, sreg(8), imm(1));
    b.emit(Opcode::S_CMP_LT_U32, {}, sreg(8), imm(in_n));
    b.branch(Opcode::S_CBRANCH_SCC1, loop);

    b.vMad(5, vreg(1), imm(4), sreg(5));
    b.flatStore(5, vreg(3));
    b.bind(end);
    b.endProgram();
    return b.finish();
}

isa::ProgramPtr
buildReluN()
{
    KernelBuilder b("relu_n");
    b.sLoad(3, kSgprKernargBase, 0);
    b.sLoad(4, kSgprKernargBase, 4);
    b.sLoad(5, kSgprKernargBase, 8); // n
    emitTid(b, 256, 1);
    Label end = b.label();
    emitGuardLt(b, 1, sreg(5), end);
    b.emit(Opcode::V_LSHL_B32, vreg(2), vreg(1), imm(2));
    b.vAddU32(3, vreg(2), sreg(3));
    b.flatLoad(4, 3);
    b.waitcnt();
    b.emit(Opcode::V_MAX_F32, vreg(4), vreg(4), immF(0.0f));
    b.vAddU32(5, vreg(2), sreg(4));
    b.flatStore(5, vreg(4));
    b.bind(end);
    b.endProgram();
    return b.finish();
}

isa::ProgramPtr
buildAddN()
{
    KernelBuilder b("add_n");
    b.sLoad(3, kSgprKernargBase, 0);  // a
    b.sLoad(4, kSgprKernargBase, 4);  // b
    b.sLoad(5, kSgprKernargBase, 8);  // out
    b.sLoad(6, kSgprKernargBase, 12); // n
    emitTid(b, 256, 1);
    Label end = b.label();
    emitGuardLt(b, 1, sreg(6), end);
    b.emit(Opcode::V_LSHL_B32, vreg(2), vreg(1), imm(2));
    b.vAddU32(3, vreg(2), sreg(3));
    b.flatLoad(4, 3);
    b.vAddU32(5, vreg(2), sreg(4));
    b.flatLoad(6, 5);
    b.waitcnt();
    b.vAddF32(7, vreg(4), vreg(6));
    b.vAddU32(8, vreg(2), sreg(5));
    b.flatStore(8, vreg(7));
    b.bind(end);
    b.endProgram();
    return b.finish();
}

isa::ProgramPtr
buildBatchNorm(std::uint32_t c, std::uint32_t hw)
{
    const std::uint32_t log_hw = log2of(hw);
    KernelBuilder b("bn_c" + std::to_string(c) + "_" +
                    std::to_string(hw));
    b.sLoad(3, kSgprKernargBase, 0);  // in
    b.sLoad(4, kSgprKernargBase, 4);  // gamma
    b.sLoad(5, kSgprKernargBase, 8);  // beta
    b.sLoad(6, kSgprKernargBase, 12); // out
    emitTid(b, wgSizeFor(c * hw), 1);

    b.emit(Opcode::V_LSHR_B32, vreg(2), vreg(1), imm(log_hw)); // ch
    b.vMad(3, vreg(2), imm(4), sreg(4));
    b.flatLoad(4, 3); // gamma[ch]
    b.vMad(5, vreg(2), imm(4), sreg(5));
    b.flatLoad(6, 5); // beta[ch]
    b.vMad(7, vreg(1), imm(4), sreg(3));
    b.flatLoad(8, 7); // in[tid]
    b.waitcnt();
    b.vMulF32(9, vreg(8), vreg(4));
    b.vAddF32(9, vreg(9), vreg(6));
    b.vMad(10, vreg(1), imm(4), sreg(6));
    b.flatStore(10, vreg(9));
    b.endProgram();
    return b.finish();
}

// --------------------------- references ------------------------------

void
refConv(const ConvParams &p, const std::vector<float> &in,
        const std::vector<float> &w, std::vector<float> &out)
{
    const std::uint32_t oh = p.outH(), ow = p.outW(), k = p.kernel;
    out.assign(std::size_t{p.outC} * oh * ow, 0.0f);
    for (std::uint32_t oc = 0; oc < p.outC; ++oc) {
        for (std::uint32_t oy = 0; oy < oh; ++oy) {
            for (std::uint32_t ox = 0; ox < ow; ++ox) {
                float acc = 0.0f;
                for (std::uint32_t ic = 0; ic < p.inC; ++ic) {
                    for (std::uint32_t ky = 0; ky < k; ++ky) {
                        for (std::uint32_t kx = 0; kx < k; ++kx) {
                            std::int64_t iy =
                                std::int64_t{oy} * p.stride + ky - p.pad;
                            std::int64_t ix =
                                std::int64_t{ox} * p.stride + kx - p.pad;
                            float v = 0.0f;
                            if (iy >= 0 && iy < p.inH && ix >= 0 &&
                                ix < p.inW) {
                                v = in[(std::size_t{ic} * p.inH + iy) *
                                           p.inW +
                                       ix];
                            }
                            acc += v * w[((std::size_t{oc} * p.inC + ic) *
                                              k +
                                          ky) *
                                             k +
                                         kx];
                        }
                    }
                }
                out[(std::size_t{oc} * oh + oy) * ow + ox] = acc;
            }
        }
    }
}

void
refMaxPool(std::uint32_t c, std::uint32_t in_h, std::uint32_t in_w,
           const std::vector<float> &in, std::vector<float> &out)
{
    const std::uint32_t oh = in_h / 2, ow = in_w / 2;
    out.assign(std::size_t{c} * oh * ow, 0.0f);
    for (std::uint32_t ch = 0; ch < c; ++ch) {
        for (std::uint32_t oy = 0; oy < oh; ++oy) {
            for (std::uint32_t ox = 0; ox < ow; ++ox) {
                auto at = [&](std::uint32_t y, std::uint32_t x) {
                    return in[(std::size_t{ch} * in_h + y) * in_w + x];
                };
                float m = std::max(
                    std::max(at(2 * oy, 2 * ox), at(2 * oy, 2 * ox + 1)),
                    std::max(at(2 * oy + 1, 2 * ox),
                             at(2 * oy + 1, 2 * ox + 1)));
                out[(std::size_t{ch} * oh + oy) * ow + ox] = m;
            }
        }
    }
}

void
refGlobalAvgPool(std::uint32_t c, std::uint32_t in_h, std::uint32_t in_w,
                 const std::vector<float> &in, std::vector<float> &out)
{
    const std::uint32_t hw = in_h * in_w;
    out.assign(c, 0.0f);
    for (std::uint32_t ch = 0; ch < c; ++ch) {
        float acc = 0.0f;
        for (std::uint32_t i = 0; i < hw; ++i)
            acc += in[std::size_t{ch} * hw + i];
        out[ch] = acc * (1.0f / static_cast<float>(hw));
    }
}

void
refDense(std::uint32_t in_n, std::uint32_t out_n,
         const std::vector<float> &in, const std::vector<float> &w,
         std::vector<float> &out)
{
    out.assign(out_n, 0.0f);
    for (std::uint32_t o = 0; o < out_n; ++o) {
        float acc = 0.0f;
        for (std::uint32_t i = 0; i < in_n; ++i)
            acc += in[i] * w[std::size_t{o} * in_n + i];
        out[o] = acc;
    }
}

void
refRelu(const std::vector<float> &in, std::vector<float> &out)
{
    out.resize(in.size());
    for (std::size_t i = 0; i < in.size(); ++i)
        out[i] = std::max(0.0f, in[i]);
}

void
refAdd(const std::vector<float> &a, const std::vector<float> &b,
       std::vector<float> &out)
{
    out.resize(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        out[i] = a[i] + b[i];
}

void
refBatchNorm(std::uint32_t c, std::uint32_t hw,
             const std::vector<float> &in,
             const std::vector<float> &gamma,
             const std::vector<float> &beta, std::vector<float> &out)
{
    out.resize(in.size());
    for (std::uint32_t ch = 0; ch < c; ++ch) {
        for (std::uint32_t i = 0; i < hw; ++i) {
            std::size_t idx = std::size_t{ch} * hw + i;
            out[idx] = in[idx] * gamma[ch] + beta[ch];
        }
    }
}

} // namespace photon::workloads::dnn
