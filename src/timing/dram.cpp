#include "timing/dram.hpp"

namespace photon::timing {

Dram::Dram(const DramConfig &cfg) : cfg_(cfg), bankFree_(cfg.numBanks, 0)
{}

Cycle
Dram::access(std::uint64_t lineAddr, Cycle now)
{
    std::uint32_t bank = lineAddr % cfg_.numBanks;
    Cycle start = now > bankFree_[bank] ? now : bankFree_[bank];
    queueingCycles_ += start - now;
    bankFree_[bank] = start + cfg_.cyclesPerLine;
    ++accesses_;
    return start + cfg_.accessLatency;
}

} // namespace photon::timing
