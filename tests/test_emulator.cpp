/** @file Functional-emulator semantics tests. */

#include <bit>
#include <cmath>

#include <gtest/gtest.h>

#include "func/emulator.hpp"
#include "isa/builder.hpp"

using namespace photon;
using namespace photon::isa;
using func::Emulator;
using func::GlobalMemory;
using func::LaunchDims;
using func::StepResult;
using func::WaveState;

namespace {

/** Fixture: builds programs and runs one wavefront. */
class EmulatorTest : public ::testing::Test
{
  protected:
    WaveState
    run(const ProgramPtr &prog, WarpId warp = 0)
    {
        WaveState ws;
        ws.init(*prog, dims_, warp);
        lds_.assign(prog->ldsBytes(), 0);
        emu_.runWave(*prog, ws, mem_, lds_);
        return ws;
    }

    Emulator emu_;
    GlobalMemory mem_{1 << 20};
    LaunchDims dims_{2, 2, 0};
    std::vector<std::uint8_t> lds_;
};

float
asF(std::uint32_t bits)
{
    return std::bit_cast<float>(bits);
}

} // namespace

TEST_F(EmulatorTest, DispatcherPreloadsIdentity)
{
    KernelBuilder b("k");
    b.endProgram();
    // Warp 3 = workgroup 1, wave 1 (2 waves per workgroup).
    WaveState ws = run(b.finish(), 3);
    EXPECT_EQ(ws.sgpr[kSgprWorkgroupId], 1u);
    EXPECT_EQ(ws.sgpr[kSgprWaveInGroup], 1u);
    EXPECT_EQ(ws.v(kVgprLocalId, 0), 64u);  // wave 1 starts at local 64
    EXPECT_EQ(ws.v(kVgprLocalId, 63), 127u);
}

TEST_F(EmulatorTest, ScalarAluBasics)
{
    KernelBuilder b("k");
    b.sMov(3, imm(10));
    b.sAdd(4, sreg(3), imm(5));
    b.emit(Opcode::S_SUB_U32, sreg(5), sreg(4), imm(3));
    b.sMul(6, sreg(5), imm(7));
    b.emit(Opcode::S_LSHL_B32, sreg(7), imm(1), imm(4));
    b.emit(Opcode::S_LSHR_B32, sreg(8), sreg(7), imm(2));
    b.emit(Opcode::S_AND_B32, sreg(9), imm(0xff), imm(0x0f));
    b.emit(Opcode::S_OR_B32, sreg(10), imm(0xf0), imm(0x0f));
    b.emit(Opcode::S_XOR_B32, sreg(11), imm(0xff), imm(0x0f));
    b.emit(Opcode::S_MIN_U32, sreg(12), imm(3), imm(9));
    b.emit(Opcode::S_MAX_U32, sreg(13), imm(3), imm(9));
    b.endProgram();
    WaveState ws = run(b.finish());
    EXPECT_EQ(ws.sgpr[4], 15u);
    EXPECT_EQ(ws.sgpr[5], 12u);
    EXPECT_EQ(ws.sgpr[6], 84u);
    EXPECT_EQ(ws.sgpr[7], 16u);
    EXPECT_EQ(ws.sgpr[8], 4u);
    EXPECT_EQ(ws.sgpr[9], 0x0fu);
    EXPECT_EQ(ws.sgpr[10], 0xffu);
    EXPECT_EQ(ws.sgpr[11], 0xf0u);
    EXPECT_EQ(ws.sgpr[12], 3u);
    EXPECT_EQ(ws.sgpr[13], 9u);
}

TEST_F(EmulatorTest, VectorAluPerLane)
{
    KernelBuilder b("k");
    b.vMulU32(1, vreg(0), imm(3));          // 3 * localId
    b.vAddU32(2, vreg(1), imm(100));
    b.vMad(3, vreg(0), imm(2), vreg(2));    // 2*localId + v2
    b.endProgram();
    WaveState ws = run(b.finish());
    for (unsigned lane = 0; lane < 64; ++lane) {
        EXPECT_EQ(ws.v(1, lane), 3 * lane);
        EXPECT_EQ(ws.v(2, lane), 3 * lane + 100);
        EXPECT_EQ(ws.v(3, lane), 2 * lane + 3 * lane + 100);
    }
}

TEST_F(EmulatorTest, FloatOps)
{
    KernelBuilder b("k");
    b.vMov(1, immF(1.5f));
    b.vAddF32(2, vreg(1), immF(2.0f));     // 3.5
    b.vMulF32(3, vreg(2), immF(2.0f));     // 7.0
    b.emit(Opcode::V_SUB_F32, vreg(4), vreg(3), immF(1.0f)); // 6.0
    b.vMov(5, immF(10.0f));
    b.vMacF32(5, vreg(1), vreg(2));        // 10 + 1.5*3.5 = 15.25
    b.emit(Opcode::V_FMA_F32, vreg(6), vreg(1), vreg(2), vreg(3));
    b.emit(Opcode::V_MAX_F32, vreg(7), vreg(4), immF(100.0f));
    b.emit(Opcode::V_MIN_F32, vreg(8), vreg(4), immF(-1.0f));
    b.emit(Opcode::V_RCP_F32, vreg(9), immF(4.0f));
    b.emit(Opcode::V_SQRT_F32, vreg(10), immF(16.0f));
    b.endProgram();
    WaveState ws = run(b.finish());
    EXPECT_FLOAT_EQ(asF(ws.v(2, 0)), 3.5f);
    EXPECT_FLOAT_EQ(asF(ws.v(3, 0)), 7.0f);
    EXPECT_FLOAT_EQ(asF(ws.v(4, 0)), 6.0f);
    EXPECT_FLOAT_EQ(asF(ws.v(5, 0)), 15.25f);
    EXPECT_FLOAT_EQ(asF(ws.v(6, 0)), std::fma(1.5f, 3.5f, 7.0f));
    EXPECT_FLOAT_EQ(asF(ws.v(7, 0)), 100.0f);
    EXPECT_FLOAT_EQ(asF(ws.v(8, 0)), -1.0f);
    EXPECT_FLOAT_EQ(asF(ws.v(9, 0)), 0.25f);
    EXPECT_FLOAT_EQ(asF(ws.v(10, 0)), 4.0f);
}

TEST_F(EmulatorTest, Conversions)
{
    KernelBuilder b("k");
    b.emit(Opcode::V_CVT_F32_U32, vreg(1), vreg(0));
    b.emit(Opcode::V_CVT_U32_F32, vreg(2), immF(9.7f));
    b.emit(Opcode::V_CVT_F32_I32, vreg(3), imm(-3));
    b.endProgram();
    WaveState ws = run(b.finish());
    EXPECT_FLOAT_EQ(asF(ws.v(1, 5)), 5.0f);
    EXPECT_EQ(ws.v(2, 0), 9u);
    EXPECT_FLOAT_EQ(asF(ws.v(3, 0)), -3.0f);
}

TEST_F(EmulatorTest, ScalarCompareAndBranch)
{
    KernelBuilder b("k");
    b.sMov(3, imm(0));
    Label skip = b.label();
    b.emit(Opcode::S_CMP_LT_U32, {}, imm(5), imm(3));
    b.branch(Opcode::S_CBRANCH_SCC1, skip); // not taken: 5 < 3 false
    b.sMov(3, imm(1));
    b.bind(skip);
    b.endProgram();
    WaveState ws = run(b.finish());
    EXPECT_EQ(ws.sgpr[3], 1u);
}

TEST_F(EmulatorTest, ScalarLoop)
{
    KernelBuilder b("k");
    b.sMov(3, imm(0));
    b.sMov(4, imm(0));
    Label loop = b.label();
    b.bind(loop);
    b.sAdd(4, sreg(4), sreg(3));
    b.sAdd(3, sreg(3), imm(1));
    b.emit(Opcode::S_CMP_LT_U32, {}, sreg(3), imm(10));
    b.branch(Opcode::S_CBRANCH_SCC1, loop);
    b.endProgram();
    WaveState ws = run(b.finish());
    EXPECT_EQ(ws.sgpr[3], 10u);
    EXPECT_EQ(ws.sgpr[4], 45u); // 0+1+...+9
}

TEST_F(EmulatorTest, VectorCompareWritesVcc)
{
    KernelBuilder b("k");
    b.emit(Opcode::V_CMP_LT_U32, {}, vreg(0), imm(4));
    b.endProgram();
    WaveState ws = run(b.finish());
    EXPECT_EQ(ws.vcc, 0xfull); // lanes 0..3
}

TEST_F(EmulatorTest, CndmaskSelectsPerLane)
{
    KernelBuilder b("k");
    b.emit(Opcode::V_CMP_GE_U32, {}, vreg(0), imm(32));
    b.emit(Opcode::V_CNDMASK_B32, vreg(1), imm(7), imm(9));
    b.endProgram();
    WaveState ws = run(b.finish());
    EXPECT_EQ(ws.v(1, 0), 7u);  // vcc clear -> src0
    EXPECT_EQ(ws.v(1, 40), 9u); // vcc set -> src1
}

TEST_F(EmulatorTest, ExecMaskDisablesLanes)
{
    KernelBuilder b("k");
    b.vMov(1, imm(1));
    b.emit(Opcode::V_CMP_LT_U32, {}, vreg(0), imm(8));
    b.emit(Opcode::S_AND_MASK, mreg(kMaskExec), mreg(kMaskExec),
           mreg(kMaskVcc));
    b.vMov(1, imm(2)); // only lanes 0..7 active
    b.endProgram();
    WaveState ws = run(b.finish());
    EXPECT_EQ(ws.v(1, 3), 2u);
    EXPECT_EQ(ws.v(1, 20), 1u); // untouched by masked write
}

TEST_F(EmulatorTest, DivergentLoopPerLaneTripCounts)
{
    // Each lane iterates localId & 7 times (saved/restored exec).
    KernelBuilder b("k");
    b.emit(Opcode::V_AND_B32, vreg(1), vreg(0), imm(7)); // bound
    b.vMov(2, imm(0));                                   // counter
    b.vMov(3, imm(0));                                   // accumulator
    b.emit(Opcode::S_MOV_MASK, mreg(kMask0), mreg(kMaskExec));
    Label loop = b.label(), done = b.label();
    b.bind(loop);
    b.emit(Opcode::V_CMP_LT_U32, {}, vreg(2), vreg(1));
    b.emit(Opcode::S_AND_MASK, mreg(kMaskExec), mreg(kMaskExec),
           mreg(kMaskVcc));
    b.branch(Opcode::S_CBRANCH_EXECZ, done);
    b.vAddU32(3, vreg(3), imm(10));
    b.vAddU32(2, vreg(2), imm(1));
    b.branch(Opcode::S_BRANCH, loop);
    b.bind(done);
    b.emit(Opcode::S_MOV_MASK, mreg(kMaskExec), mreg(kMask0));
    b.endProgram();
    WaveState ws = run(b.finish());
    for (unsigned lane = 0; lane < 64; ++lane)
        EXPECT_EQ(ws.v(3, lane), 10u * (lane & 7)) << lane;
    EXPECT_EQ(ws.exec, ~std::uint64_t{0}); // restored
}

TEST_F(EmulatorTest, MaskRegisterOps)
{
    KernelBuilder b("k");
    b.emit(Opcode::V_CMP_LT_U32, {}, vreg(0), imm(2)); // vcc = 0b11
    b.emit(Opcode::S_MOV_MASK, mreg(kMask1), mreg(kMaskVcc));
    b.emit(Opcode::S_OR_MASK, mreg(kMask2), mreg(kMask1),
           mreg(kMaskVcc));
    b.emit(Opcode::S_ANDN2_MASK, mreg(kMask3), mreg(kMaskAllOnes),
           mreg(kMask1));
    b.endProgram();
    WaveState ws = run(b.finish());
    EXPECT_EQ(ws.maskRegs[1], 0x3ull);
    EXPECT_EQ(ws.maskRegs[2], 0x3ull);
    EXPECT_EQ(ws.maskRegs[3], ~0x3ull);
}

TEST_F(EmulatorTest, FlatLoadStoreRoundTrip)
{
    Addr buf = mem_.allocate(64 * 4);
    for (unsigned i = 0; i < 64; ++i)
        mem_.write32(buf + i * 4, 1000 + i);

    KernelBuilder b("k");
    b.vMad(1, vreg(0), imm(4), imm(static_cast<std::int64_t>(buf)));
    b.flatLoad(2, 1);
    b.waitcnt();
    b.vAddU32(2, vreg(2), imm(1));
    b.flatStore(1, vreg(2));
    b.endProgram();
    run(b.finish());
    for (unsigned i = 0; i < 64; ++i)
        EXPECT_EQ(mem_.read32(buf + i * 4), 1001 + i);
}

TEST_F(EmulatorTest, CoalescingConsecutiveLanes)
{
    Addr buf = mem_.allocate(64 * 4);
    KernelBuilder b("k");
    b.vMad(1, vreg(0), imm(4), imm(static_cast<std::int64_t>(buf)));
    b.flatLoad(2, 1);
    b.endProgram();
    ProgramPtr prog = b.finish();

    WaveState ws;
    ws.init(*prog, dims_, 0);
    StepResult res;
    std::vector<std::uint8_t> lds;
    emu_.step(*prog, ws, mem_, lds, res); // vMad
    emu_.step(*prog, ws, mem_, lds, res); // load
    // 64 lanes x 4B consecutive = 256B = 4 lines.
    EXPECT_EQ(res.numLines, 4u);
    EXPECT_FALSE(res.linesWrite);
}

TEST_F(EmulatorTest, CoalescingUniformAddress)
{
    Addr buf = mem_.allocate(64);
    KernelBuilder b("k");
    b.vMov(1, imm(static_cast<std::int64_t>(buf)));
    b.flatLoad(2, 1);
    b.endProgram();
    ProgramPtr prog = b.finish();
    WaveState ws;
    ws.init(*prog, dims_, 0);
    StepResult res;
    std::vector<std::uint8_t> lds;
    emu_.step(*prog, ws, mem_, lds, res);
    emu_.step(*prog, ws, mem_, lds, res);
    EXPECT_EQ(res.numLines, 1u);
}

TEST_F(EmulatorTest, CoalescingScatteredAddresses)
{
    Addr buf = mem_.allocate(64 * 1024);
    KernelBuilder b("k");
    // addr = buf + localId * 1024: one line per lane.
    b.vMad(1, vreg(0), imm(1024), imm(static_cast<std::int64_t>(buf)));
    b.flatLoad(2, 1);
    b.endProgram();
    ProgramPtr prog = b.finish();
    WaveState ws;
    ws.init(*prog, dims_, 0);
    StepResult res;
    std::vector<std::uint8_t> lds;
    emu_.step(*prog, ws, mem_, lds, res);
    emu_.step(*prog, ws, mem_, lds, res);
    EXPECT_EQ(res.numLines, 64u);
}

TEST_F(EmulatorTest, ScalarLoadReadsKernarg)
{
    Addr args = mem_.allocate(16);
    mem_.write32(args + 8, 12345);
    dims_.kernargBase = args;
    KernelBuilder b("k");
    b.sLoad(3, kSgprKernargBase, 8);
    b.endProgram();
    WaveState ws = run(b.finish());
    EXPECT_EQ(ws.sgpr[3], 12345u);
}

TEST_F(EmulatorTest, LdsReadWrite)
{
    KernelBuilder b("k");
    b.setLdsBytes(1024);
    b.vMad(1, vreg(0), imm(4), imm(0)); // per-lane LDS address
    b.vMulU32(2, vreg(0), imm(3));
    b.dsWrite(1, vreg(2));
    b.dsRead(3, 1);
    b.endProgram();
    WaveState ws = run(b.finish());
    for (unsigned lane = 0; lane < 64; ++lane)
        EXPECT_EQ(ws.v(3, lane), 3 * lane);
}

TEST_F(EmulatorTest, BarrierAndDoneFlags)
{
    KernelBuilder b("k");
    b.barrier();
    b.endProgram();
    ProgramPtr prog = b.finish();
    WaveState ws;
    ws.init(*prog, dims_, 0);
    StepResult res;
    std::vector<std::uint8_t> lds;
    emu_.step(*prog, ws, mem_, lds, res);
    EXPECT_TRUE(res.barrier);
    EXPECT_FALSE(res.done);
    emu_.step(*prog, ws, mem_, lds, res);
    EXPECT_TRUE(res.done);
    EXPECT_TRUE(ws.done);
}

TEST_F(EmulatorTest, RunWaveCountsInstructions)
{
    KernelBuilder b("k");
    b.sMov(3, imm(0));
    Label loop = b.label();
    b.bind(loop);
    b.sAdd(3, sreg(3), imm(1));
    b.emit(Opcode::S_CMP_LT_U32, {}, sreg(3), imm(5));
    b.branch(Opcode::S_CBRANCH_SCC1, loop);
    b.endProgram();
    ProgramPtr prog = b.finish();
    WaveState ws;
    ws.init(*prog, dims_, 0);
    std::vector<std::uint8_t> lds;
    // 1 (mov) + 5 * 3 (loop body) + 1 (endpgm).
    EXPECT_EQ(emu_.runWave(*prog, ws, mem_, lds), 17u);
}

/** Parameterised semantics check over the integer compare family. */
struct CmpCase
{
    Opcode op;
    std::uint32_t a, b;
    bool expect;
};

class ScalarCompare : public ::testing::TestWithParam<CmpCase>
{};

TEST_P(ScalarCompare, SetsSccCorrectly)
{
    const CmpCase &c = GetParam();
    KernelBuilder b("k");
    b.emit(c.op, {}, imm(c.a), imm(c.b));
    b.endProgram();
    ProgramPtr prog = b.finish();
    Emulator emu;
    GlobalMemory mem(4096 + 64);
    WaveState ws;
    ws.init(*prog, LaunchDims{1, 1, 0}, 0);
    std::vector<std::uint8_t> lds;
    emu.runWave(*prog, ws, mem, lds);
    EXPECT_EQ(ws.scc, c.expect);
}

INSTANTIATE_TEST_SUITE_P(
    AllCompares, ScalarCompare,
    ::testing::Values(CmpCase{Opcode::S_CMP_LT_U32, 1, 2, true},
                      CmpCase{Opcode::S_CMP_LT_U32, 2, 2, false},
                      CmpCase{Opcode::S_CMP_LE_U32, 2, 2, true},
                      CmpCase{Opcode::S_CMP_GT_U32, 3, 2, true},
                      CmpCase{Opcode::S_CMP_GT_U32, 2, 3, false},
                      CmpCase{Opcode::S_CMP_GE_U32, 2, 2, true},
                      CmpCase{Opcode::S_CMP_EQ_U32, 5, 5, true},
                      CmpCase{Opcode::S_CMP_EQ_U32, 5, 6, false},
                      CmpCase{Opcode::S_CMP_NE_U32, 5, 6, true}));
