# Empty dependencies file for test_photon.
# This may be replaced when dependencies are built.
