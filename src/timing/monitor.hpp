/**
 * @file
 * Observation hooks the sampling layer attaches to a detailed simulation.
 * The timing model pushes wavefront, instruction and basic-block events;
 * the monitor may ask the run loop to stop dispatching new work (the
 * "switch to sampling" decision).
 */

#ifndef PHOTON_TIMING_MONITOR_HPP
#define PHOTON_TIMING_MONITOR_HPP

#include <cstdint>

#include "func/emulator.hpp"
#include "sim/phase_annotations.hpp"
#include "isa/basic_block.hpp"
#include "sim/types.hpp"

namespace photon::timing {

/**
 * Coarse phases of one detailed kernel run, pushed through the hook
 * interface so an observer can scope its bookkeeping to a kernel
 * without knowing anything about the run loop:
 *
 *   Launch ─► Detailed ─► (Draining) ─► Complete
 *
 * Draining is only entered when the observer's wantsStop() fired: new
 * workgroup dispatch halts and resident wavefronts run to completion.
 */
enum class KernelPhase
{
    Launch,   ///< kernel accepted; nothing dispatched yet
    Detailed, ///< the run loop is executing instructions
    Draining, ///< dispatch halted after a stop request; residents drain
    Complete, ///< the run loop exited (normally or after a drain)
};

/** Human-readable phase name. */
const char *kernelPhaseName(KernelPhase phase);

/**
 * Base class for kernel-execution observers — the narrow hook interface
 * between the timing data plane and any control plane above it. All
 * callbacks default to no-ops so monitors only override what they need.
 * This header is the only coupling point: the timing layer knows no
 * concrete observer type, and observers see the data plane exclusively
 * through these events.
 */
class KernelMonitor
{
  public:
    virtual ~KernelMonitor() = default;

    /** The run entered a new phase (see KernelPhase). Emitted from the
     *  run loop thread, in phase order, once per transition. */
    PHOTON_SHARED_STATE
    virtual void
    onKernelPhase(KernelPhase phase, Cycle now)
    {
        (void)phase;
        (void)now;
    }

    /** A wavefront was scheduled onto a compute unit. */
    PHOTON_SHARED_STATE
    virtual void
    onWaveDispatched(WarpId warp, Cycle now)
    {
        (void)warp;
        (void)now;
    }

    /** A wavefront executed s_endpgm. */
    PHOTON_SHARED_STATE
    virtual void
    onWaveRetired(WarpId warp, Cycle now, std::uint64_t inst_count)
    {
        (void)warp;
        (void)now;
        (void)inst_count;
    }

    /** One instruction issued; @p complete is the cycle its result is
     *  ready (memory included). */
    PHOTON_SHARED_STATE
    virtual void
    onInstruction(WarpId warp, const func::StepResult &result, Cycle issue,
                  Cycle complete)
    {
        (void)warp;
        (void)result;
        (void)issue;
        (void)complete;
    }

    /** One dynamic basic-block execution finished. Per the paper, the
     *  execution time of a block is the interval between the issue of its
     *  first instruction and the issue of the next block's first
     *  instruction. @p active_lanes is the EXEC population at the
     *  block's first instruction — divergence changes a block's memory
     *  footprint, so the samplers track it. */
    PHOTON_SHARED_STATE
    virtual void
    onBbExecuted(WarpId warp, isa::BbId bb, Cycle issue, Cycle retire,
                 std::uint32_t active_lanes)
    {
        (void)warp;
        (void)bb;
        (void)issue;
        (void)retire;
        (void)active_lanes;
    }

    /** Polled by the run loop; return true to stop dispatching new
     *  workgroups (resident ones drain). */
    PHOTON_SHARED_STATE
    virtual bool
    wantsStop(Cycle now)
    {
        (void)now;
        return false;
    }
};

} // namespace photon::timing

#endif // PHOTON_TIMING_MONITOR_HPP
