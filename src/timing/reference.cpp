#include "timing/reference.hpp"

#include <algorithm>
#include <bit>

#include "sim/log.hpp"

namespace photon::timing {

namespace {

/** Bytes per encoded instruction for L1I address purposes. */
constexpr Addr kInstBytes = 8;

/** Instructions per L1I line, for the pc -> fetch-line shift. */
constexpr std::uint32_t kPcsPerLine =
    static_cast<std::uint32_t>(kLineBytes / kInstBytes);

} // namespace

ReferenceCu::ReferenceCu(const GpuConfig &cfg, std::uint32_t cuId,
                         MemorySystem &memsys, const func::Emulator &emu)
    : cfg_(cfg), cuId_(cuId), memsys_(memsys), emu_(emu),
      waves_(cfg.simdsPerCu * cfg.wavesPerSimd),
      wgs_(cfg.workgroupsPerCu), simdFree_(cfg.simdsPerCu, 0)
{}

void
ReferenceCu::startKernel(const KernelContext &ctx)
{
    PHOTON_ASSERT(residentWaves_ == 0, "reference CU busy at kernel start");
    ctx_ = ctx;
    PHOTON_ASSERT(ctx.codeBase % kLineBytes == 0,
                  "code base not line-aligned");
    codeLineBase_ = ctx.codeBase / kLineBytes;
    for (Wave &w : waves_)
        w.active = false;
    for (Workgroup &wg : wgs_)
        wg.active = false;
    std::fill(simdFree_.begin(), simdFree_.end(), 0);
    residentWaves_ = 0;
    residentWgs_ = 0;
    instsIssued_ = 0;
    wavesRetired_ = 0;
}

bool
ReferenceCu::canAcceptWorkgroup() const
{
    if (residentWgs_ >= cfg_.workgroupsPerCu)
        return false;
    std::uint32_t free_slots =
        static_cast<std::uint32_t>(waves_.size()) - residentWaves_;
    if (free_slots < ctx_.dims->wavesPerWorkgroup)
        return false;
    std::uint64_t lds_needed =
        std::uint64_t{residentWgs_ + 1} * ctx_.program->ldsBytes();
    return lds_needed <= cfg_.ldsBytesPerCu;
}

void
ReferenceCu::placeWorkgroup(WorkgroupId wg, Cycle now)
{
    PHOTON_ASSERT(canAcceptWorkgroup(), "placeWorkgroup without capacity");

    std::uint32_t wg_slot = 0;
    while (wgs_[wg_slot].active)
        ++wg_slot;
    Workgroup &group = wgs_[wg_slot];
    group.active = true;
    group.id = wg;
    group.wavesLeft = ctx_.dims->wavesPerWorkgroup;
    group.barrierWaiting = 0;
    group.lds.assign(ctx_.program->ldsBytes(), 0);
    group.slots.clear();
    ++residentWgs_;

    std::uint32_t wave_slot = 0;
    for (std::uint32_t i = 0; i < ctx_.dims->wavesPerWorkgroup; ++i) {
        while (waves_[wave_slot].active)
            ++wave_slot;
        Wave &w = waves_[wave_slot];
        WarpId warp = wg * ctx_.dims->wavesPerWorkgroup + i;
        w.ws.init(*ctx_.program, *ctx_.dims, warp);
        w.active = true;
        w.atBarrier = false;
        w.readyAt = now + 4; // dispatch latency
        w.instCount = 0;
        w.wgSlot = wg_slot;
        w.lastFetchLine = ~std::uint64_t{0};
        w.bbValid = false;
        group.slots.push_back(wave_slot);
        ++residentWaves_;
        if (ctx_.monitor)
            ctx_.monitor->onWaveDispatched(warp, now);
    }
}

std::uint32_t
ReferenceCu::tick(Cycle now)
{
    if (residentWaves_ == 0)
        return 0;

    std::uint32_t issued = 0;
    const std::uint32_t simds = cfg_.simdsPerCu;
    const std::uint32_t per_simd = cfg_.wavesPerSimd;

    for (std::uint32_t s = 0; s < simds; ++s) {
        if (simdFree_[s] > now)
            continue;
        // Age-prioritised arbitration (GCN issues the oldest ready
        // wavefront): the straightforward branchy scan over every slot
        // of the SIMD.
        std::uint32_t best = ~std::uint32_t{0};
        WarpId best_warp = ~WarpId{0};
        for (std::uint32_t k = 0; k < per_simd; ++k) {
            const Wave &w = waves_[s + k * simds];
            if (!w.active || w.atBarrier || w.readyAt > now)
                continue;
            if (w.ws.warpId < best_warp) {
                best_warp = w.ws.warpId;
                best = s + k * simds;
            }
        }
        if (best != ~std::uint32_t{0}) {
            issueWave(best, now);
            ++issued;
        }
    }
    return issued;
}

void
ReferenceCu::issueWave(std::uint32_t slot, Cycle now)
{
    Wave &w = waves_[slot];
    Workgroup &wg = wgs_[w.wgSlot];
    const std::uint32_t simd = slot % cfg_.simdsPerCu;
    const std::uint32_t pc_before = w.ws.pc;
    const WarpId warp = w.ws.warpId;

    // Dynamic basic-block boundary: issuing the first instruction of a
    // block ends the previous one (paper Observation 3 definition).
    bool bb_end = false;
    isa::BbId bb = isa::kNoBb;
    Cycle bb_issue = 0;
    std::uint32_t bb_lanes = 0;
    if (ctx_.bbTable->isLeader(pc_before)) {
        if (w.bbValid) {
            bb_end = true;
            bb = w.curBb;
            bb_issue = w.curBbIssue;
            bb_lanes = w.curBbLanes;
        }
        w.curBb = ctx_.bbTable->blockAt(pc_before);
        w.curBbIssue = now;
        w.curBbLanes =
            static_cast<std::uint32_t>(std::popcount(w.ws.exec));
        w.bbValid = true;
    }

    // Instruction fetch through the L1I (one access per line crossed).
    bool do_fetch = false;
    std::uint64_t fetch_line = codeLineBase_ + pc_before / kPcsPerLine;
    if (fetch_line != w.lastFetchLine) {
        do_fetch = true;
        w.lastFetchLine = fetch_line;
    }

    emu_.step(*ctx_.program, w.ws, *ctx_.mem, wg.lds, step_);
    ++w.instCount;
    ++instsIssued_;

    // Per-unit latency selection: the reference keeps the plain switch.
    // The L1V probes run before the L1I fetch and the miss commits, the
    // same shared-state order as the event core's issueFront/commitIssue
    // pair — the memory system's counters must not be able to tell the
    // two engines apart.
    misses_.clear();
    Cycle complete = now + 1;
    Cycle ready = now + 1;
    switch (step_.unit) {
      case isa::FuncUnit::SALU:
        complete = now + cfg_.saluLatency;
        ready = complete;
        simdFree_[simd] = now + cfg_.scalarIssueCycles;
        break;
      case isa::FuncUnit::BRANCH:
        complete = now + cfg_.saluLatency;
        ready = complete;
        simdFree_[simd] = now + cfg_.scalarIssueCycles;
        break;
      case isa::FuncUnit::VALU:
        complete = now + cfg_.valuLatency;
        ready = complete;
        simdFree_[simd] = now + cfg_.vectorIssueCycles;
        break;
      case isa::FuncUnit::VALU4:
        complete = now + 4 * cfg_.valuLatency;
        ready = complete;
        simdFree_[simd] = now + 4 * cfg_.vectorIssueCycles;
        break;
      case isa::FuncUnit::LDS:
        // One extra cycle per 16 lane-accesses (bank conflicts beyond
        // the 16-bank width are second order).
        complete = now + cfg_.ldsLatency + step_.ldsAccesses / 16;
        ready = complete;
        simdFree_[simd] = now + cfg_.vectorIssueCycles;
        break;
      case isa::FuncUnit::SMEM:
        simdFree_[simd] = now + cfg_.scalarIssueCycles;
        break;
      case isa::FuncUnit::VMEM: {
        Cycle finish = now;
        for (std::uint32_t i = 0; i < step_.numLines; ++i) {
            MemorySystem::VmemProbe p =
                memsys_.vectorProbe(cuId_, step_.lines[i], now);
            if (p.hit) {
                finish = std::max(finish, p.ready);
            } else {
                misses_.push_back(
                    {step_.lines[i], p.missBase, p.mshrIdx});
            }
        }
        complete = finish; // hit-path maximum; misses folded below
        // Loads block the wavefront until data returns; stores retire
        // from the wavefront's perspective once issued.
        ready = step_.linesWrite ? now + cfg_.vectorIssueCycles : 0;
        simdFree_[simd] = now + cfg_.vectorIssueCycles;
        break;
      }
      case isa::FuncUnit::SYNC:
        complete = now + 1;
        ready = now + 1;
        simdFree_[simd] = now + 1;
        break;
    }

    if (bb_end && ctx_.monitor)
        ctx_.monitor->onBbExecuted(warp, bb, bb_issue, now, bb_lanes);

    Cycle fetch_ready = now;
    if (do_fetch)
        fetch_ready = memsys_.instAccess(cuId_, fetch_line, now);

    if (step_.unit == isa::FuncUnit::SMEM) {
        complete = memsys_.scalarAccess(cuId_, step_.lines[0], now);
        ready = complete;
    } else if (step_.unit == isa::FuncUnit::VMEM) {
        Cycle finish = complete;
        for (const MemorySystem::VmemMiss &m : misses_)
            finish = std::max(finish, memsys_.vectorCommitMiss(cuId_, m));
        complete = finish;
        if (!step_.linesWrite)
            ready = finish;
    }

    w.readyAt = std::max(ready, fetch_ready);

    if (ctx_.monitor)
        ctx_.monitor->onInstruction(warp, step_, now, complete);

    if (step_.barrier) {
        w.atBarrier = true;
        ++wg.barrierWaiting;
        if (wg.barrierWaiting == wg.wavesLeft)
            releaseBarrier(w.wgSlot, now);
    }

    if (step_.done)
        retireWave(slot, now);
}

void
ReferenceCu::retireWave(std::uint32_t slot, Cycle now)
{
    Wave &w = waves_[slot];
    Workgroup &wg = wgs_[w.wgSlot];

    if (w.bbValid && ctx_.monitor) {
        ctx_.monitor->onBbExecuted(w.ws.warpId, w.curBb, w.curBbIssue,
                                   now, w.curBbLanes);
    }
    if (ctx_.monitor)
        ctx_.monitor->onWaveRetired(w.ws.warpId, now, w.instCount);

    w.active = false;
    --residentWaves_;
    ++wavesRetired_;
    --wg.wavesLeft;
    if (wg.wavesLeft == 0) {
        wg.active = false;
        --residentWgs_;
    } else if (wg.barrierWaiting > 0 &&
               wg.barrierWaiting == wg.wavesLeft) {
        // A retiring wavefront can complete a barrier for the others.
        releaseBarrier(w.wgSlot, now);
    }
}

void
ReferenceCu::releaseBarrier(std::uint32_t wgSlot, Cycle now)
{
    // Walk only this workgroup's wave slots (recorded at placement).
    // The wgSlot check guards slots retired here and reused by another
    // workgroup placed while this one was still resident.
    for (std::uint32_t slot : wgs_[wgSlot].slots) {
        Wave &w = waves_[slot];
        if (w.active && w.wgSlot == wgSlot && w.atBarrier) {
            w.atBarrier = false;
            w.readyAt = std::max(w.readyAt, now + 1);
        }
    }
    wgs_[wgSlot].barrierWaiting = 0;
}

ReferenceEngine::ReferenceEngine(const GpuConfig &cfg,
                                 MemorySystem &memsys,
                                 const func::Emulator &emu)
    : cfg_(cfg)
{
    cus_.reserve(cfg.numCus);
    for (std::uint32_t i = 0; i < cfg.numCus; ++i)
        cus_.emplace_back(cfg, i, memsys, emu);
}

void
ReferenceEngine::tryDispatch(Cycle now)
{
    // Round-robin over the CUs, workgroup-id order — the same placement
    // policy as timing::Dispatcher, rescanned every cycle.
    while (nextWg_ < numWgs_) {
        bool any = false;
        for (std::size_t i = 0; i < cus_.size(); ++i) {
            std::size_t cu = (rr_ + i) % cus_.size();
            if (cus_[cu].canAcceptWorkgroup()) {
                cus_[cu].placeWorkgroup(nextWg_++, now);
                rr_ = (cu + 1) % cus_.size();
                any = true;
                break;
            }
        }
        if (!any)
            return;
    }
}

RunOutcome
ReferenceEngine::run(const KernelContext &ctx, KernelMonitor *monitor,
                     const RunOptions &opts, Cycle &now)
{
    for (ReferenceCu &cu : cus_)
        cu.startKernel(ctx);
    numWgs_ = ctx.dims->numWorkgroups;
    nextWg_ = 0;
    rr_ = 0;

    RunOutcome out;
    out.startCycle = now;
    bool stopping = false;

    while (true) {
        if (monitor && !stopping && monitor->wantsStop(now)) {
            stopping = true;
            monitor->onKernelPhase(KernelPhase::Draining, now);
        }
        if (!stopping)
            tryDispatch(now);

        // Scan every resident CU, every cycle — the per-cycle reference
        // schedule the event core's wheel/heap short-circuits.
        std::uint32_t issued = 0;
        bool any_resident = false;
        for (ReferenceCu &cu : cus_) {
            if (cu.idle())
                continue;
            any_resident = true;
            issued += cu.tick(now);
        }

        if (issued > 0 && opts.collectIpcTrace) {
            std::size_t bucket =
                (now - out.startCycle) / opts.ipcBucketCycles;
            if (out.ipcTrace.size() <= bucket)
                out.ipcTrace.resize(bucket + 1, 0.0);
            out.ipcTrace[bucket] += issued;
        }

        if (!any_resident && (nextWg_ >= numWgs_ || stopping))
            break;

        // Occupancy integrals with post-tick residency, matching the
        // event loop's accountAdvance over its (jumped) cycle ranges:
        // occupancy is constant over any stretch the event loop skips,
        // so summing per cycle here lands on the same totals.
        std::uint32_t busy = 0;
        std::uint32_t resident = 0;
        for (const ReferenceCu &cu : cus_) {
            if (!cu.idle()) {
                ++busy;
                resident += cu.residentWaves();
            }
        }
        if (busy > 0) {
            out.activeCycles += 1;
            out.busyCuCycles += busy;
            out.waveCycles += resident;
        }
        now += 1;
    }

    out.stoppedEarly = stopping;
    out.firstUndispatchedWg = nextWg_;
    for (const ReferenceCu &cu : cus_) {
        out.instsIssued += cu.instsIssued();
        out.wavesCompleted += cu.wavesRetired();
    }
    return out;
}

} // namespace photon::timing
