/**
 * @file
 * Simulated global memory: a flat byte arena with a bump allocator.
 * Address 0 is reserved (never allocated) so that 0 can serve as a null
 * pointer in kernels.
 */

#ifndef PHOTON_FUNC_MEMORY_HPP
#define PHOTON_FUNC_MEMORY_HPP

#include <cstdint>
#include <cstring>
#include <vector>

#include "sim/log.hpp"
#include "sim/types.hpp"

namespace photon::func {

/**
 * Flat simulated DRAM. Buffers are allocated sequentially; there is no
 * free() — a Platform owns one GlobalMemory per simulation and the whole
 * arena is released together.
 */
class GlobalMemory
{
  public:
    /** @param capacity_bytes backing-store size actually reserved. */
    explicit GlobalMemory(std::uint64_t capacity_bytes = 512ull << 20)
        : data_(capacity_bytes, 0), brk_(kLineBytes)
    {}

    /** Allocate @p bytes aligned to @p align; returns the base address. */
    Addr
    allocate(std::uint64_t bytes, std::uint64_t align = kLineBytes)
    {
        Addr base = (brk_ + align - 1) / align * align;
        if (base + bytes > data_.size())
            fatal("simulated global memory exhausted (need ",
                  base + bytes, " bytes, have ", data_.size(), ")");
        brk_ = base + bytes;
        return base;
    }

    /** Bytes allocated so far. */
    std::uint64_t allocated() const { return brk_; }

    std::uint32_t
    read32(Addr addr) const
    {
        boundsCheck(addr, 4);
        std::uint32_t v;
        std::memcpy(&v, data_.data() + addr, 4);
        return v;
    }

    void
    write32(Addr addr, std::uint32_t value)
    {
        boundsCheck(addr, 4);
        std::memcpy(data_.data() + addr, &value, 4);
    }

    /** Bulk host-side copy into simulated memory. */
    void
    writeBlock(Addr addr, const void *src, std::uint64_t bytes)
    {
        boundsCheck(addr, bytes);
        std::memcpy(data_.data() + addr, src, bytes);
    }

    /** Bulk host-side copy out of simulated memory. */
    void
    readBlock(Addr addr, void *dst, std::uint64_t bytes) const
    {
        boundsCheck(addr, bytes);
        std::memcpy(dst, data_.data() + addr, bytes);
    }

    /** Bounds-checked raw view of [addr, addr+bytes): gather/scatter
     *  loops validate the enclosing lane-address range once and then
     *  index relative to the returned pointer, instead of paying a
     *  bounds check per lane. */
    const std::uint8_t *
    span(Addr addr, std::uint64_t bytes) const
    {
        boundsCheck(addr, bytes);
        return data_.data() + addr;
    }

    std::uint64_t capacity() const { return data_.size(); }

  private:
    void
    boundsCheck(Addr addr, std::uint64_t bytes) const
    {
        if (addr + bytes > data_.size() || addr == 0)
            panic("global memory access out of bounds: addr=", addr,
                  " size=", bytes);
    }

    std::vector<std::uint8_t> data_;
    Addr brk_;
};

} // namespace photon::func

#endif // PHOTON_FUNC_MEMORY_HPP
