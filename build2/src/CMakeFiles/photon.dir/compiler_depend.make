# Empty compiler generated dependencies file for photon.
# This may be replaced when dependencies are built.
