/**
 * @file
 * Paper Figure 16 (Section 6.3): real-world applications — PageRank,
 * VGG-16/19 and the ResNet family — under full-detailed simulation and
 * Photon. The headline result is the speedup growth with network depth
 * (ResNet-18 -> 152) driven by kernel-sampling over repeated layers.
 */

#include <iostream>

#include "bench_util.hpp"
#include "workloads/dnn/network.hpp"

using namespace photon;
using namespace photon::bench;

int
main(int argc, char **argv)
{
    bool quick = quickMode(argc, argv);
    driver::printBanner(std::cout,
                        "Figure 16: real-world applications");

    struct App
    {
        const char *name;
        WorkloadFactory factory;
    };
    std::vector<App> apps = {
        // Graphs sized past the L2 so iteration times are stationary
        // (smaller graphs re-run warm from iteration 2 on).
        {"PR-32K", [] { return workloads::makePagerank(32768, 8, 12); }},
        {"PR-64K", [] { return workloads::makePagerank(65536, 8, 12); }},
        {"VGG-16", [] { return workloads::dnn::makeVgg(16); }},
        {"VGG-19", [] { return workloads::dnn::makeVgg(19); }},
        {"ResNet-18", [] { return workloads::dnn::makeResnet(18); }},
        {"ResNet-34", [] { return workloads::dnn::makeResnet(34); }},
        {"ResNet-50", [] { return workloads::dnn::makeResnet(50); }},
        {"ResNet-101", [] { return workloads::dnn::makeResnet(101); }},
        {"ResNet-152", [] { return workloads::dnn::makeResnet(152); }},
    };
    if (quick) {
        apps = {{"PR-32K",
                 [] { return workloads::makePagerank(32768, 8, 12); }},
                {"VGG-16", [] { return workloads::dnn::makeVgg(16); }},
                {"ResNet-18",
                 [] { return workloads::dnn::makeResnet(18); }}};
    }

    driver::Table t({"app", "kernels", "full cycles", "full wall s",
                     "photon wall s", "err %", "speedup",
                     "kernel-sampled"});
    double err_sum = 0;
    int n = 0;
    double resnet152_speedup = 0;

    for (const App &app : apps) {
        ModeRun full = runMode(app.factory, driver::SimMode::FullDetailed);
        ModeRun photon = runMode(app.factory, driver::SimMode::Photon);
        double e = errorVs(photon, full);
        double s = speedupVs(photon, full);
        err_sum += e;
        ++n;
        int kernel_sampled = 0;
        for (const auto &l : photon.log) {
            kernel_sampled +=
                l.sample.level == sampling::SampleLevel::Kernel;
        }
        if (std::string(app.name) == "ResNet-152")
            resnet152_speedup = s;
        t.addRow({app.name, std::to_string(photon.log.size()),
                  std::to_string(full.cycles),
                  driver::Table::num(full.wallSeconds, 2),
                  driver::Table::num(photon.wallSeconds, 2),
                  driver::Table::num(e, 2), driver::Table::num(s, 2),
                  std::to_string(kernel_sampled) + "/" +
                      std::to_string(photon.log.size())});
        std::cerr << "done " << app.name << "\n";
    }
    t.print(std::cout);

    driver::printBanner(std::cout, "Figure 16 summary");
    std::cout << "avg sampling error "
              << driver::Table::num(err_sum / n, 2) << "%\n";
    if (resnet152_speedup > 0) {
        std::cout << "ResNet-152 speedup "
                  << driver::Table::num(resnet152_speedup, 2) << "x\n";
    }
    std::cout << "(paper: avg error 4.3%; ResNet-152 39.1x speedup at"
                 " 10.7% error, 7.05 days -> 1.7 hours)\n";
    return 0;
}
