/**
 * @file
 * Timing-backend fidelity/speed trade-off: wall time and predicted
 * cycles of the detailed core, the analytical interval backend, and
 * auto mode (detailed until the stability detectors converge, interval
 * for the remainder) on a compute-bound workload (mm), a memory-bound
 * one (spmv) and an iterative one (pagerank, where the cross-kernel
 * latch pays off).
 *
 * The interval backend trades accuracy for speed by construction — no
 * event loop, no MSHR or bank contention — so each interval row
 * carries an explicit error bound and minimum speedup, and the bench
 * FAILS when a bound is violated. The bounds are honest: spmv's is
 * wide because its runtime is dominated by DRAM-contention behaviour
 * the closed-form floors cannot reproduce (see DESIGN.md); auto mode
 * is the answer when that error is unacceptable.
 *
 * Measurement protocol: deterministic cycle counts are asserted
 * identical across repetitions; wall times report the median of an
 * odd repetition count. Writes BENCH_backend.json in the working
 * directory for the CI perf-smoke artifact.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "driver/report.hpp"
#include "sampling/telemetry.hpp"
#include "service/campaign.hpp"

using namespace photon;

namespace {

struct BackendRun
{
    std::string workload;
    std::uint32_t size = 0;
    std::string backend;
    Cycle cycles = 0;
    std::uint64_t insts = 0;
    double wallSeconds = 0.0; ///< median over the timed repetitions
    double wallMin = 0.0;     ///< fastest repetition
    double wallMax = 0.0;     ///< slowest repetition
    double spreadPct = 0.0;   ///< (max - min) / median, percent
    bool spreadFlagged = false; ///< spread exceeded kSpreadLimitPct
    double errorPct = 0.0;    ///< |cycles - detailed| / detailed
    double speedup = 0.0;     ///< detailed wall / this wall
    std::uint32_t reps = 0;
    // Auto-mode switch evidence (zero for the other backends).
    std::uint64_t latchedKernels = 0;
    std::uint64_t intervalLaunches = 0;
    // Gates (0 = not gated).
    double errorBoundPct = 0.0;
    double minSpeedup = 0.0;
};

BackendRun
runOnce(const std::string &name, std::uint32_t size,
        const bench::WorkloadFactory &factory, timing::BackendKind kind)
{
    driver::Platform platform(GpuConfig::r9Nano(),
                              driver::SimMode::FullDetailed, {}, kind);
    // Each rep is a fresh platform with a private trace store, so
    // capture could never pay for itself here — and this bench
    // compares the backends' own timing paths, not trace economics
    // (bench/trace_reuse owns that). Measure with the trace layer off.
    platform.setTraceReuse(false);
    workloads::WorkloadPtr w = factory();
    w->setup(platform);
    workloads::runWorkload(*w, platform);

    BackendRun r;
    r.workload = name;
    r.size = size;
    r.backend = timing::backendKindName(kind);
    r.cycles = platform.totalKernelCycles();
    r.insts = platform.totalInsts();
    r.wallSeconds = platform.totalWallSeconds();
    if (platform.pilot()) {
        r.latchedKernels = platform.pilot()->latchedKernels();
        r.intervalLaunches = platform.pilot()->intervalLaunches();
    }
    return r;
}

/** Repetition spread above this fraction of the median marks the
 *  measurement as noisy (flagged in the output and the JSON, not a
 *  failure — host load is not the simulator's regression). */
constexpr double kSpreadLimitPct = 15.0;

/** Median wall time over deterministic cycle counts (odd rep counts
 *  have a true middle element), plus the min/max envelope and a
 *  noisy-measurement flag when the spread exceeds kSpreadLimitPct. */
BackendRun
medianOf(std::vector<BackendRun> samples)
{
    for (const BackendRun &s : samples) {
        if (s.cycles != samples[0].cycles) {
            std::fprintf(stderr,
                         "FAIL: %s/%s nondeterministic (%llu vs %llu "
                         "cycles)\n",
                         s.workload.c_str(), s.backend.c_str(),
                         static_cast<unsigned long long>(s.cycles),
                         static_cast<unsigned long long>(
                             samples[0].cycles));
            std::exit(1);
        }
    }
    std::sort(samples.begin(), samples.end(),
              [](const BackendRun &a, const BackendRun &b) {
                  return a.wallSeconds < b.wallSeconds;
              });
    BackendRun r = samples[samples.size() / 2];
    r.reps = static_cast<std::uint32_t>(samples.size());
    r.wallMin = samples.front().wallSeconds;
    r.wallMax = samples.back().wallSeconds;
    r.spreadPct = r.wallSeconds > 0
                      ? 100.0 * (r.wallMax - r.wallMin) / r.wallSeconds
                      : 0.0;
    r.spreadFlagged = r.reps > 1 && r.spreadPct > kSpreadLimitPct;
    if (r.spreadFlagged) {
        std::fprintf(stderr,
                     "WARN: %s/%s wall-time spread %.1f%% over %u reps "
                     "(min %.3fs median %.3fs max %.3fs) — noisy host, "
                     "treat the speedup with suspicion\n",
                     r.workload.c_str(), r.backend.c_str(), r.spreadPct,
                     r.reps, r.wallMin, r.wallSeconds, r.wallMax);
    }
    return r;
}

void
writeJson(const std::vector<BackendRun> &rows, const char *path)
{
    std::ofstream f(path);
    if (!f) {
        std::fprintf(stderr, "cannot open %s\n", path);
        return;
    }
    f << "{\n  \"bench\": \"backend_speedup\",\n"
      << "  \"telemetry_schema_version\": "
      << sampling::kTelemetrySchemaVersion
      << ",\n  \"timing\": \"median\",\n  \"runs\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const BackendRun &r = rows[i];
        f << "    {\"workload\": \"" << r.workload
          << "\", \"size\": " << r.size << ", \"backend\": \""
          << r.backend << "\", \"reps\": " << r.reps
          << ", \"cycles\": " << r.cycles << ", \"insts\": " << r.insts
          << ", \"wall_s\": " << r.wallSeconds
          << ", \"wall_min_s\": " << r.wallMin
          << ", \"wall_max_s\": " << r.wallMax
          << ", \"spread_pct\": " << r.spreadPct
          << ", \"spread_flagged\": "
          << (r.spreadFlagged ? "true" : "false")
          << ", \"error_vs_detailed_pct\": " << r.errorPct
          << ", \"speedup_vs_detailed\": " << r.speedup
          << ", \"error_bound_pct\": " << r.errorBoundPct
          << ", \"min_speedup\": " << r.minSpeedup
          << ", \"latched_kernels\": " << r.latchedKernels
          << ", \"interval_launches\": " << r.intervalLaunches << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    f << "  ]\n}\n";
    std::printf("wrote %s\n", path);
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = bench::quickMode(argc, argv);
    // Odd so the median is a real sample, not an interpolation.
    const std::uint32_t reps = quick ? 1 : 3;

    /** Per-workload gates. The interval bounds are deliberately wide
     *  where the analytical model is known weak (spmv, see file
     *  comment); the auto bound is tight because auto only leaves the
     *  detailed core once a kernel's duration has proven stable. */
    struct Case
    {
        const char *name;
        std::uint32_t size;
        bench::WorkloadFactory factory;
        double intervalErrBound; ///< percent
        double intervalMinSpeedup;
        double autoErrBound;   ///< percent; 0 = not gated
        double autoMinSpeedup; ///< 0 = not gated
    };
    const std::uint32_t mm_n = quick ? 128 : 256;
    const std::uint32_t spmv_rows = quick ? 1024 : 2048;
    const std::uint32_t pr_nodes = quick ? 4096 : 16384;
    // The headline >= 5x interval speedups need full-size runs: the
    // quick sizes finish in milliseconds, where per-launch setup
    // dominates, so quick mode gates correspondingly lower.
    // Gates sit below the typically measured speedups (mm ~5-6.5x,
    // spmv ~6-7x full size) so host-load noise cannot flake them; the
    // committed BENCH_backend.json records the actual medians.
    const double mm_spd = quick ? 3.0 : 4.0;
    const double spmv_spd = quick ? 2.0 : 5.0;
    const double pr_spd = quick ? 1.2 : 1.5;
    // Never-latching workloads (mm, spmv run each kernel once, so the
    // cross-kernel detector can never converge): the pilot's
    // unmonitored passthrough must make auto indistinguishable from
    // detailed — cycle-exact, and no slower than measurement noise
    // allows. The quick gate is looser only because single-rep
    // millisecond runs are at the mercy of the scheduler.
    const double auto_parity_spd = quick ? 0.90 : 0.98;
    // Sizes mean what they mean on the CLI: the factory goes through
    // service::makeWorkload, so "spmv 2048" here is the same job as
    // `photon_sim --workload spmv --size 2048`.
    auto factory = [](const char *name, std::uint32_t size) {
        return [name, size] {
            std::string err;
            auto w = service::makeWorkload(name, size, &err);
            if (!w) {
                std::fprintf(stderr, "bad workload: %s\n", err.c_str());
                std::exit(1);
            }
            return w;
        };
    };
    const Case cases[] = {
        {"mm", mm_n, factory("mm", mm_n),
         /*intervalErrBound=*/55.0, /*intervalMinSpeedup=*/mm_spd,
         /*autoErrBound=*/0.01, /*autoMinSpeedup=*/auto_parity_spd},
        {"spmv", spmv_rows, factory("spmv", spmv_rows),
         /*intervalErrBound=*/98.0, /*intervalMinSpeedup=*/spmv_spd,
         /*autoErrBound=*/0.01, /*autoMinSpeedup=*/auto_parity_spd},
        {"pagerank", pr_nodes, factory("pagerank", pr_nodes),
         /*intervalErrBound=*/75.0, /*intervalMinSpeedup=*/pr_spd,
         /*autoErrBound=*/5.0, /*autoMinSpeedup=*/1.05},
    };

    driver::printBanner(std::cout,
                        "Timing-backend speed/fidelity trade-off "
                        "(r9nano, full-detailed mode)");
    std::printf("mm n=%u, spmv rows=%u, pagerank nodes=%u; "
                "%u reps (median) after 1 warm-up\n\n",
                mm_n, spmv_rows, pr_nodes, reps);

    const timing::BackendKind kinds[] = {timing::BackendKind::Detailed,
                                         timing::BackendKind::Interval,
                                         timing::BackendKind::Auto};

    bool ok = true;
    std::vector<BackendRun> rows;
    driver::Table table({"workload", "backend", "cycles", "wall_s",
                         "err%", "speedup", "latched"});
    for (const Case &c : cases) {
        // One untimed warm-up (page-in, allocator), then interleave
        // the timed repetitions so host load biases no backend.
        std::vector<BackendRun> samples[3];
        for (int k = 0; k < 3; ++k)
            (void)runOnce(c.name, c.size, c.factory, kinds[k]);
        for (std::uint32_t i = 0; i < reps; ++i)
            for (int k = 0; k < 3; ++k)
                samples[k].push_back(
                    runOnce(c.name, c.size, c.factory, kinds[k]));

        BackendRun detailed = medianOf(std::move(samples[0]));
        detailed.speedup = 1.0;
        for (int k = 0; k < 3; ++k) {
            BackendRun r = k == 0 ? detailed
                                  : medianOf(std::move(samples[k]));
            if (k > 0) {
                r.errorPct = driver::percentError(
                    static_cast<double>(r.cycles),
                    static_cast<double>(detailed.cycles));
                r.speedup = r.wallSeconds > 0
                                ? detailed.wallSeconds / r.wallSeconds
                                : 0.0;
                r.errorBoundPct =
                    k == 1 ? c.intervalErrBound : c.autoErrBound;
                r.minSpeedup =
                    k == 1 ? c.intervalMinSpeedup : c.autoMinSpeedup;
                if (r.errorBoundPct > 0 && r.errorPct > r.errorBoundPct) {
                    std::fprintf(stderr,
                                 "FAIL: %s/%s error %.2f%% exceeds the "
                                 "stated bound %.2f%%\n",
                                 r.workload.c_str(), r.backend.c_str(),
                                 r.errorPct, r.errorBoundPct);
                    ok = false;
                }
                if (r.minSpeedup > 0 && r.speedup < r.minSpeedup) {
                    std::fprintf(stderr,
                                 "FAIL: %s/%s speedup %.2fx below the "
                                 "stated minimum %.2fx\n",
                                 r.workload.c_str(), r.backend.c_str(),
                                 r.speedup, r.minSpeedup);
                    ok = false;
                }
            }
            table.addRow({r.workload, r.backend,
                          std::to_string(r.cycles),
                          driver::Table::num(r.wallSeconds, 3),
                          driver::Table::num(r.errorPct),
                          driver::Table::num(r.speedup),
                          std::to_string(r.latchedKernels)});
            rows.push_back(r);
        }
        // Auto mode must actually have switched on the iterative
        // workload — otherwise it is just detailed with overhead.
        const BackendRun &auto_run = rows.back();
        if (std::string(c.name) == "pagerank" &&
            auto_run.intervalLaunches == 0) {
            std::fprintf(stderr,
                         "FAIL: auto never switched on pagerank\n");
            ok = false;
        }
    }
    table.print(std::cout);
    std::printf(
        "\ninterval trades accuracy for speed (no event loop; spmv's\n"
        "bound is wide because DRAM contention dominates it); auto\n"
        "keeps errors tight by switching only once launch durations\n"
        "prove stable, so its win grows with iteration count.\n");

    writeJson(rows, "BENCH_backend.json");
    return ok ? 0 : 1;
}
