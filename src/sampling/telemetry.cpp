#include "sampling/telemetry.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>

namespace photon::sampling {

const char *
sampleLevelName(SampleLevel level)
{
    switch (level) {
      case SampleLevel::Full: return "full";
      case SampleLevel::Kernel: return "kernel";
      case SampleLevel::Warp: return "warp";
      case SampleLevel::BasicBlock: return "bb";
    }
    return "?";
}

namespace {

bool
parseLevelName(std::string_view name, SampleLevel &out)
{
    if (name == "full") out = SampleLevel::Full;
    else if (name == "kernel") out = SampleLevel::Kernel;
    else if (name == "warp") out = SampleLevel::Warp;
    else if (name == "bb") out = SampleLevel::BasicBlock;
    else return false;
    return true;
}

/** Minimal JSON string escape (names we emit are plain ASCII). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
            continue;
        }
        out.push_back(c);
    }
    return out;
}

/** Shortest representation that round-trips through strtod. */
std::string
num(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
writeRecord(const KernelTelemetry &t, std::ostream &os)
{
    os << "    {\"kernel\": \"" << jsonEscape(t.kernel) << "\", \"job\": \""
       << jsonEscape(t.job) << "\",\n"
       << "     \"workgroups\": " << t.numWorkgroups
       << ", \"waves_per_wg\": " << t.wavesPerWorkgroup
       << ", \"level\": \"" << t.levelName() << "\""
       << ", \"switch_cycle\": " << t.switchCycle
       << ", \"resident_at_switch\": " << t.residentAtSwitch << ",\n"
       << "     \"det_points\": " << t.warpDetector.points
       << ", \"det_slope\": " << num(t.warpDetector.slope)
       << ", \"det_slope_valid\": "
       << (t.warpDetector.slopeValid ? "true" : "false")
       << ", \"det_drift\": " << num(t.warpDetector.drift) << ",\n"
       << "     \"det_mean_recent\": " << num(t.warpDetector.meanRecent)
       << ", \"det_mean_prev\": " << num(t.warpDetector.meanPrev)
       << ", \"det_stable\": "
       << (t.warpDetector.stable ? "true" : "false")
       << ", \"bb_stable_rate\": " << num(t.bbStableRate) << ",\n"
       << "     \"predicted_cycles\": " << t.predictedCycles
       << ", \"predicted_insts\": " << t.predictedInsts
       << ", \"detailed_cycles\": " << t.detailedCycles
       << ", \"detailed_insts\": " << t.detailedInsts << ",\n"
       << "     \"detailed_warps\": " << t.detailedWarps
       << ", \"total_warps\": " << t.totalWarps
       << ", \"analysis_insts\": " << t.analysisInsts
       << ", \"analysis_reused\": "
       << (t.analysisReused ? "true" : "false")
       << ", \"detailed_fraction\": " << num(t.detailedFraction()) << ",\n"
       << "     \"wall_seconds\": " << num(t.wallSeconds);
    // Detailed-only statistics: backends that never ran the detailed
    // core emit null, not zero — absence must stay distinguishable.
    if (t.hasDetailedStats) {
        os << ", \"epochs\": " << t.epochs
           << ", \"epoch_cycles\": " << t.epochCycles
           << ", \"barrier_crossings\": " << t.barrierCrossings;
    } else {
        os << ", \"epochs\": null, \"epoch_cycles\": null"
           << ", \"barrier_crossings\": null";
    }
    os << ",\n     \"backend\": \"" << jsonEscape(t.backend) << "\""
       << ", \"backend_detailed_cycles\": " << t.backendDetailedCycles
       << ", \"backend_interval_cycles\": " << t.backendIntervalCycles
       << "}";
}

/**
 * Tiny recursive-descent reader for the documents writeTelemetryJson
 * emits (objects, arrays, strings with \"/\\ escapes, numbers, bools).
 * Not a general JSON parser; unknown keys are skipped so older readers
 * tolerate future additive schema changes.
 */
class Reader
{
  public:
    explicit Reader(std::string_view text) : s_(text) {}

    bool
    fail(std::string why)
    {
        if (error_.empty())
            error_ = why + " (near offset " + std::to_string(pos_) + ")";
        return false;
    }

    const std::string &error() const { return error_; }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                s_[pos_] == '\r' || s_[pos_] == ','))
            ++pos_;
    }

    bool
    expect(char c)
    {
        skipWs();
        if (pos_ >= s_.size() || s_[pos_] != c)
            return fail(std::string("expected '") + c + "'");
        ++pos_;
        return true;
    }

    bool
    peek(char c)
    {
        skipWs();
        return pos_ < s_.size() && s_[pos_] == c;
    }

    bool
    readString(std::string &out)
    {
        if (!expect('"'))
            return false;
        out.clear();
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_++];
            if (c == '\\' && pos_ < s_.size())
                c = s_[pos_++];
            out.push_back(c);
        }
        if (pos_ >= s_.size())
            return fail("unterminated string");
        ++pos_; // closing quote
        return true;
    }

    bool
    readNumber(double &out)
    {
        skipWs();
        const char *begin = s_.data() + pos_;
        char *end = nullptr;
        out = std::strtod(begin, &end);
        if (end == begin)
            return fail("expected number");
        pos_ += static_cast<std::size_t>(end - begin);
        return true;
    }

    bool
    readBool(bool &out)
    {
        skipWs();
        if (s_.compare(pos_, 4, "true") == 0) {
            out = true;
            pos_ += 4;
            return true;
        }
        if (s_.compare(pos_, 5, "false") == 0) {
            out = false;
            pos_ += 5;
            return true;
        }
        return fail("expected bool");
    }

    /** Consume a literal null if present (nullable v3 statistics). */
    bool
    tryNull()
    {
        skipWs();
        if (s_.compare(pos_, 4, "null") == 0) {
            pos_ += 4;
            return true;
        }
        return false;
    }

    /** Skip any value (for unknown keys). */
    bool
    skipValue()
    {
        skipWs();
        if (pos_ >= s_.size())
            return fail("expected value");
        char c = s_[pos_];
        if (c == '"') {
            std::string ignored;
            return readString(ignored);
        }
        if (c == '{' || c == '[') {
            char close = c == '{' ? '}' : ']';
            ++pos_;
            int depth = 1;
            while (pos_ < s_.size() && depth > 0) {
                char d = s_[pos_];
                if (d == '"') {
                    std::string ignored;
                    if (!readString(ignored))
                        return false;
                    continue;
                }
                if (d == c)
                    ++depth;
                else if (d == close)
                    --depth;
                ++pos_;
            }
            return depth == 0 || fail("unterminated container");
        }
        if (c == 't' || c == 'f') {
            bool ignored;
            return readBool(ignored);
        }
        if (c == 'n')
            return tryNull() || fail("expected value");
        double ignored;
        return readNumber(ignored);
    }

  private:
    std::string_view s_;
    std::size_t pos_ = 0;
    std::string error_;
};

bool
readRecord(Reader &r, KernelTelemetry &t)
{
    if (!r.expect('{'))
        return false;
    while (!r.peek('}')) {
        std::string key;
        if (!r.readString(key) || !r.expect(':'))
            return false;
        double d = 0.0;
        bool b = false;
        std::string s;
        if (key == "kernel") {
            if (!r.readString(t.kernel))
                return false;
        } else if (key == "job") {
            if (!r.readString(t.job))
                return false;
        } else if (key == "level") {
            if (!r.readString(s))
                return false;
            if (!parseLevelName(s, t.level))
                return r.fail("unknown level '" + s + "'");
        } else if (key == "workgroups") {
            if (!r.readNumber(d))
                return false;
            t.numWorkgroups = static_cast<std::uint32_t>(d);
        } else if (key == "waves_per_wg") {
            if (!r.readNumber(d))
                return false;
            t.wavesPerWorkgroup = static_cast<std::uint32_t>(d);
        } else if (key == "switch_cycle") {
            if (!r.readNumber(d))
                return false;
            t.switchCycle = static_cast<Cycle>(d);
        } else if (key == "resident_at_switch") {
            if (!r.readNumber(d))
                return false;
            t.residentAtSwitch = static_cast<std::uint32_t>(d);
        } else if (key == "det_points") {
            if (!r.readNumber(d))
                return false;
            t.warpDetector.points = static_cast<std::uint64_t>(d);
        } else if (key == "det_slope") {
            if (!r.readNumber(t.warpDetector.slope))
                return false;
        } else if (key == "det_slope_valid") {
            if (!r.readBool(t.warpDetector.slopeValid))
                return false;
        } else if (key == "det_drift") {
            if (!r.readNumber(t.warpDetector.drift))
                return false;
        } else if (key == "det_mean_recent") {
            if (!r.readNumber(t.warpDetector.meanRecent))
                return false;
        } else if (key == "det_mean_prev") {
            if (!r.readNumber(t.warpDetector.meanPrev))
                return false;
        } else if (key == "det_stable") {
            if (!r.readBool(t.warpDetector.stable))
                return false;
        } else if (key == "bb_stable_rate") {
            if (!r.readNumber(t.bbStableRate))
                return false;
        } else if (key == "predicted_cycles") {
            if (!r.readNumber(d))
                return false;
            t.predictedCycles = static_cast<Cycle>(d);
        } else if (key == "predicted_insts") {
            if (!r.readNumber(d))
                return false;
            t.predictedInsts = static_cast<std::uint64_t>(d);
        } else if (key == "detailed_cycles") {
            if (!r.readNumber(d))
                return false;
            t.detailedCycles = static_cast<Cycle>(d);
        } else if (key == "detailed_insts") {
            if (!r.readNumber(d))
                return false;
            t.detailedInsts = static_cast<std::uint64_t>(d);
        } else if (key == "detailed_warps") {
            if (!r.readNumber(d))
                return false;
            t.detailedWarps = static_cast<std::uint32_t>(d);
        } else if (key == "total_warps") {
            if (!r.readNumber(d))
                return false;
            t.totalWarps = static_cast<std::uint32_t>(d);
        } else if (key == "analysis_insts") {
            if (!r.readNumber(d))
                return false;
            t.analysisInsts = static_cast<std::uint64_t>(d);
        } else if (key == "analysis_reused") {
            if (!r.readBool(t.analysisReused))
                return false;
        } else if (key == "wall_seconds") {
            if (!r.readNumber(t.wallSeconds))
                return false;
        } else if (key == "epochs") {
            if (r.tryNull())
                t.hasDetailedStats = false;
            else if (r.readNumber(d))
                t.epochs = static_cast<std::uint64_t>(d);
            else
                return false;
        } else if (key == "epoch_cycles") {
            if (r.tryNull())
                t.hasDetailedStats = false;
            else if (r.readNumber(d))
                t.epochCycles = static_cast<std::uint64_t>(d);
            else
                return false;
        } else if (key == "barrier_crossings") {
            if (r.tryNull())
                t.hasDetailedStats = false;
            else if (r.readNumber(d))
                t.barrierCrossings = static_cast<std::uint64_t>(d);
            else
                return false;
        } else if (key == "backend") {
            if (!r.readString(t.backend))
                return false;
        } else if (key == "backend_detailed_cycles") {
            if (!r.readNumber(d))
                return false;
            t.backendDetailedCycles = static_cast<Cycle>(d);
        } else if (key == "backend_interval_cycles") {
            if (!r.readNumber(d))
                return false;
            t.backendIntervalCycles = static_cast<Cycle>(d);
        } else {
            if (!r.skipValue())
                return false;
            (void)b;
        }
    }
    return r.expect('}');
}

} // namespace

void
writeTelemetryJson(const std::vector<KernelTelemetry> &records,
                   std::ostream &os)
{
    os << "{\n  \"schema_version\": " << kTelemetrySchemaVersion
       << ",\n  \"kernels\": [\n";
    for (std::size_t i = 0; i < records.size(); ++i) {
        writeRecord(records[i], os);
        os << (i + 1 < records.size() ? ",\n" : "\n");
    }
    os << "  ]\n}\n";
}

void
writeTelemetryCsv(const std::vector<KernelTelemetry> &records,
                  std::ostream &os)
{
    os << "# telemetry_schema_version=" << kTelemetrySchemaVersion << "\n"
       << "kernel,job,workgroups,waves_per_wg,level,switch_cycle,"
          "resident_at_switch,det_points,det_slope,det_slope_valid,"
          "det_drift,det_mean_recent,det_mean_prev,det_stable,"
          "bb_stable_rate,predicted_cycles,predicted_insts,"
          "detailed_cycles,detailed_insts,detailed_warps,total_warps,"
          "analysis_insts,analysis_reused,detailed_fraction,"
          "wall_seconds,epochs,epoch_cycles,barrier_crossings,"
          "backend,backend_detailed_cycles,backend_interval_cycles\n";
    for (const KernelTelemetry &t : records) {
        os << t.kernel << ',' << t.job << ',' << t.numWorkgroups << ','
           << t.wavesPerWorkgroup << ',' << t.levelName() << ','
           << t.switchCycle << ',' << t.residentAtSwitch << ','
           << t.warpDetector.points << ',' << num(t.warpDetector.slope)
           << ',' << (t.warpDetector.slopeValid ? 1 : 0) << ','
           << num(t.warpDetector.drift) << ','
           << num(t.warpDetector.meanRecent) << ','
           << num(t.warpDetector.meanPrev) << ','
           << (t.warpDetector.stable ? 1 : 0) << ','
           << num(t.bbStableRate) << ',' << t.predictedCycles << ','
           << t.predictedInsts << ',' << t.detailedCycles << ','
           << t.detailedInsts << ',' << t.detailedWarps << ','
           << t.totalWarps << ',' << t.analysisInsts << ','
           << (t.analysisReused ? 1 : 0) << ','
           << num(t.detailedFraction()) << ',' << num(t.wallSeconds)
           << ',';
        // Detailed-only statistics: empty cells when never measured.
        if (t.hasDetailedStats)
            os << t.epochs << ',' << t.epochCycles << ','
               << t.barrierCrossings;
        else
            os << ",,";
        os << ',' << t.backend << ',' << t.backendDetailedCycles << ','
           << t.backendIntervalCycles << "\n";
    }
}

bool
readTelemetryJson(std::string_view text, std::vector<KernelTelemetry> &out,
                  std::string *error)
{
    Reader r(text);
    std::vector<KernelTelemetry> records;
    bool saw_version = false;

    auto fail = [&](const std::string &why) {
        if (error)
            *error = why.empty() ? r.error() : why;
        return false;
    };

    if (!r.expect('{'))
        return fail("");
    while (!r.peek('}')) {
        std::string key;
        if (!r.readString(key) || !r.expect(':'))
            return fail("");
        if (key == "schema_version") {
            double v = 0.0;
            if (!r.readNumber(v))
                return fail("");
            // Additive schema evolution: any version from 1 up to the
            // writer's loads — missing fields keep their defaults.
            std::uint32_t ver = static_cast<std::uint32_t>(v);
            if (ver < 1 || ver > kTelemetrySchemaVersion)
                return fail("telemetry schema version mismatch: file has " +
                            std::to_string(ver) +
                            ", reader supports 1.." +
                            std::to_string(kTelemetrySchemaVersion));
            saw_version = true;
        } else if (key == "kernels") {
            if (!r.expect('['))
                return fail("");
            while (!r.peek(']')) {
                KernelTelemetry t;
                if (!readRecord(r, t))
                    return fail("");
                records.push_back(std::move(t));
            }
            if (!r.expect(']'))
                return fail("");
        } else {
            if (!r.skipValue())
                return fail("");
        }
    }
    if (!saw_version)
        return fail("telemetry document has no schema_version");
    out = std::move(records);
    return true;
}

bool
saveTelemetry(const std::vector<KernelTelemetry> &records,
              const std::string &path, std::string *error)
{
    std::ofstream f(path);
    if (!f) {
        if (error)
            *error = "cannot open telemetry file '" + path + "'";
        return false;
    }
    bool csv = path.size() >= 4 &&
               path.compare(path.size() - 4, 4, ".csv") == 0;
    if (csv)
        writeTelemetryCsv(records, f);
    else
        writeTelemetryJson(records, f);
    if (!f) {
        if (error)
            *error = "write to telemetry file '" + path + "' failed";
        return false;
    }
    return true;
}

} // namespace photon::sampling
