/**
 * @file
 * Flow-sensitive lock-set / phase-write analysis (DESIGN.md §9).
 *
 * For every function with a CFG, a must-hold set of mutex names flows
 * forward through the graph (join = intersection over reachable
 * predecessors): Guard events insert, Unguard events erase. At each
 * write event the target chain is matched against annotated fields —
 * name-level, like every other photon_lint check:
 *
 *  - a PHOTON_GUARDED_BY(m) field requires `m` in the must-hold set;
 *  - a plain PHOTON_SHARED_STATE field requires *some* held lock,
 *    unless the writing function is itself tagged shared / exempt
 *    (internally synchronized by contract);
 *
 * and at each call event, callees tagged PHOTON_REQUIRES_LOCK(m)
 * require `m` held at the call site. Functions in the serial commit
 * closure (reachable from any PHOTON_PHASE_COMMIT root through the
 * call graph), constructors, and destructors are exempt: they run
 * single-threaded by protocol.
 *
 * Violations carry a concrete CFG path trace from the function entry
 * to the offending statement, annotated with every guard acquire /
 * release along the way — the path the analysis believes reaches the
 * write without the lock.
 */

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "dataflow.hpp"
#include "model.hpp"

namespace photon::lint {

namespace {

/** Mutex name -> acquisition depth. Counting (not a plain set) keeps
 *  two same-named guards distinct: releasing `self.mu` must not clear
 *  a live guard on `victim.mu` (both track as "mu" at name level). */
using LockSet = std::map<std::string, int>;

LockSet
transferLocks(const CfgBlock &block, LockSet state)
{
    for (const CfgEvent &e : block.events) {
        if (e.kind == CfgEvent::Kind::Guard) {
            ++state[e.name];
        } else if (e.kind == CfgEvent::Kind::Unguard) {
            auto it = state.find(e.name);
            if (it != state.end() && --it->second <= 0)
                state.erase(it);
        }
    }
    return state;
}

/** Must-hold join: key-wise minimum over both paths. */
LockSet
intersect(const LockSet &a, const LockSet &b)
{
    LockSet out;
    for (const auto &[name, depth] : a) {
        auto it = b.find(name);
        if (it != b.end())
            out.emplace(name, std::min(depth, it->second));
    }
    return out;
}

/** Function indices reachable from any PHOTON_PHASE_COMMIT root via
 *  the name-level call graph: the serial commit closure. */
std::set<std::size_t>
commitClosure(const Model &model,
              const std::multimap<std::string, std::size_t> &byName)
{
    std::set<std::size_t> closure;
    std::deque<std::size_t> queue;
    for (std::size_t k = 0; k < model.functions.size(); ++k) {
        if (model.functions[k].tagCommit) {
            closure.insert(k);
            queue.push_back(k);
        }
    }
    while (!queue.empty()) {
        std::size_t cur = queue.front();
        queue.pop_front();
        for (const CallSite &site : model.functions[cur].calls) {
            auto range = byName.equal_range(site.callee);
            for (auto it = range.first; it != range.second; ++it) {
                if (closure.insert(it->second).second)
                    queue.push_back(it->second);
            }
        }
    }
    return closure;
}

/** Predecessor lists of a Cfg. */
std::vector<std::vector<std::size_t>>
buildPreds(const Cfg &cfg)
{
    std::vector<std::vector<std::size_t>> preds(cfg.blocks.size());
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        for (std::size_t s : cfg.blocks[b].succs)
            preds[s].push_back(b);
    }
    return preds;
}

/**
 * Root-first chain tracing one concrete entry-to-violation path:
 * the function header, each guard acquire/release on the path, and
 * the offending statement. Predecessors whose out-state lacks
 * @p mutex (or is lock-free when @p mutex is empty) are preferred so
 * the printed path is one on which the violation actually occurs.
 */
std::vector<std::string>
tracePath(const Function &fn, const Cfg &cfg,
          const std::vector<std::optional<LockSet>> &in,
          const std::vector<std::vector<std::size_t>> &preds,
          std::size_t violBlock, std::size_t violEvent,
          const std::string &mutex, const std::string &what, int line)
{
    // Walk backward from the violation to the entry.
    std::vector<std::size_t> rev{violBlock};
    std::set<std::size_t> visited{violBlock};
    std::size_t cur = violBlock;
    while (cur != 0) {
        std::size_t pick = cfg.blocks.size();
        for (std::size_t p : preds[cur]) {
            if (visited.count(p) || !in[p])
                continue;
            LockSet out = transferLocks(cfg.blocks[p], *in[p]);
            bool lacking = mutex.empty() ? out.empty()
                                         : out.count(mutex) == 0;
            if (lacking) {
                pick = p;
                break;
            }
            if (pick == cfg.blocks.size())
                pick = p;
        }
        if (pick == cfg.blocks.size())
            break;
        visited.insert(pick);
        rev.push_back(pick);
        cur = pick;
    }
    std::reverse(rev.begin(), rev.end());

    std::vector<std::string> chain;
    chain.push_back(fn.display() + " (" + fn.file + ":" +
                    std::to_string(fn.line) + ")");
    for (std::size_t k = 0; k < rev.size(); ++k) {
        const CfgBlock &block = cfg.blocks[rev[k]];
        std::size_t limit = rev[k] == violBlock ? violEvent
                                                : block.events.size();
        for (std::size_t e = 0; e < limit; ++e) {
            const CfgEvent &ev = block.events[e];
            if (ev.kind == CfgEvent::Kind::Guard)
                chain.push_back("lock '" + ev.name + "' acquired (" +
                                fn.file + ":" +
                                std::to_string(ev.line) + ")");
            else if (ev.kind == CfgEvent::Kind::Unguard)
                chain.push_back("lock '" + ev.name + "' released (" +
                                fn.file + ":" +
                                std::to_string(ev.line) + ")");
        }
    }
    chain.push_back(what + " (" + fn.file + ":" + std::to_string(line) +
                    ")");
    return chain;
}

} // namespace

void
checkLockset(const Model &model, std::vector<Diagnostic> &out)
{
    std::multimap<std::string, std::size_t> byName;
    for (std::size_t k = 0; k < model.functions.size(); ++k)
        byName.emplace(model.functions[k].name, k);

    const std::set<std::size_t> closure = commitClosure(model, byName);

    // Field name -> annotated field records (name-level matching,
    // consistent with the phase check).
    std::map<std::string, std::vector<const Field *>> fieldsByName;
    for (const Field &f : model.fields) {
        if (!f.guardMutex.empty() || f.tagShared)
            fieldsByName[f.name].push_back(&f);
    }

    for (std::size_t k = 0; k < model.functions.size(); ++k) {
        const Function &fn = model.functions[k];
        if (!fn.cfg || closure.count(k))
            continue;
        // Constructors / destructors run before the object is shared.
        if (!fn.cls.empty() &&
            (fn.name == fn.cls || fn.name == "~" + fn.cls))
            continue;

        const Cfg &cfg = *fn.cfg;
        LockSet entry;
        if (!fn.requiresLock.empty())
            entry[fn.requiresLock] = 1;
        auto in = solveForward(
            cfg, entry, transferLocks, intersect,
            [](const LockSet &a, const LockSet &b) { return a == b; });
        auto preds = buildPreds(cfg);

        for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
            if (!in[b])
                continue; // unreachable
            LockSet held = *in[b];
            for (std::size_t e = 0; e < cfg.blocks[b].events.size();
                 ++e) {
                const CfgEvent &ev = cfg.blocks[b].events[e];
                if (ev.kind == CfgEvent::Kind::Guard) {
                    ++held[ev.name];
                    continue;
                }
                if (ev.kind == CfgEvent::Kind::Unguard) {
                    auto hit = held.find(ev.name);
                    if (hit != held.end() && --hit->second <= 0)
                        held.erase(hit);
                    continue;
                }
                if (ev.kind == CfgEvent::Kind::Call) {
                    if (ev.waivedLockset)
                        continue;
                    auto range = byName.equal_range(ev.name);
                    bool anyCandidate = false;
                    bool satisfied = false;
                    std::string wanted;
                    for (auto it = range.first; it != range.second;
                         ++it) {
                        const Function &callee =
                            model.functions[it->second];
                        if (callee.requiresLock.empty()) {
                            // An unannotated overload shadows the
                            // requirement at name level: stay quiet.
                            satisfied = true;
                            continue;
                        }
                        anyCandidate = true;
                        wanted = callee.requiresLock;
                        if (held.count(callee.requiresLock))
                            satisfied = true;
                    }
                    if (anyCandidate && !satisfied) {
                        Diagnostic d;
                        d.kind = Kind::RequiresLockCall;
                        d.file = fn.file;
                        d.line = ev.line;
                        d.message =
                            "call to '" + ev.name +
                            "' (PHOTON_REQUIRES_LOCK('" + wanted +
                            "')) without holding '" + wanted +
                            "' on every path";
                        d.chain = tracePath(fn, cfg, in, preds, b, e,
                                            wanted,
                                            "call to '" + ev.name + "'",
                                            ev.line);
                        out.push_back(std::move(d));
                    }
                    continue;
                }
                if (ev.kind != CfgEvent::Kind::Write ||
                    ev.waivedLockset)
                    continue;

                // Match chain components against annotated fields;
                // the first component with candidates decides.
                std::vector<std::string> comps;
                std::string word;
                for (char c : ev.chain + ".") {
                    if (c == '.') {
                        if (!word.empty())
                            comps.push_back(word);
                        word.clear();
                    } else {
                        word += c;
                    }
                }
                for (std::size_t ci = 0; ci < comps.size(); ++ci) {
                    auto fit = fieldsByName.find(comps[ci]);
                    if (fit == fieldsByName.end())
                        continue;
                    // A bare first-component write is an unqualified
                    // member access: it can only name a field of the
                    // writer's own class. Chain accesses (`victim.q`)
                    // stay name-level: the receiver's type is unknown.
                    const bool bare = ci == 0;
                    const Field *guarded = nullptr;
                    const Field *shared = nullptr;
                    for (const Field *f : fit->second) {
                        if (bare && f->cls != fn.cls)
                            continue;
                        if (!f->guardMutex.empty() && !guarded)
                            guarded = f;
                        else if (f->tagShared && !shared)
                            shared = f;
                    }
                    if (guarded == nullptr && shared == nullptr)
                        continue; // no candidate survives the filter
                    if (guarded != nullptr) {
                        if (!held.count(guarded->guardMutex)) {
                            Diagnostic d;
                            d.kind = Kind::UnguardedSharedWrite;
                            d.file = fn.file;
                            d.line = ev.line;
                            d.message =
                                "write ('" + ev.how + "') to '" +
                                ev.chain + "': field '" +
                                (guarded->cls.empty()
                                     ? guarded->name
                                     : guarded->cls + "::" +
                                           guarded->name) +
                                "' is PHOTON_GUARDED_BY('" +
                                guarded->guardMutex +
                                "') but the mutex is not held on "
                                "every path to this statement";
                            d.chain = tracePath(
                                fn, cfg, in, preds, b, e,
                                guarded->guardMutex,
                                "unguarded write to '" + ev.chain +
                                    "'",
                                ev.line);
                            out.push_back(std::move(d));
                        }
                    } else if (shared != nullptr) {
                        bool allowed = !held.empty() || fn.tagShared ||
                                       fn.tagExempt;
                        if (!allowed) {
                            Diagnostic d;
                            d.kind = Kind::UnguardedSharedWrite;
                            d.file = fn.file;
                            d.line = ev.line;
                            d.message =
                                "write ('" + ev.how + "') to "
                                "shared-state field '" +
                                ev.chain +
                                "' outside the commit closure with "
                                "no lock held; guard it, tag the "
                                "writer, or waive with `// "
                                "photon-lint: lockset-ok`";
                            d.chain = tracePath(
                                fn, cfg, in, preds, b, e, "",
                                "unguarded write to '" + ev.chain +
                                    "'",
                                ev.line);
                            out.push_back(std::move(d));
                        }
                    }
                    break; // first matching component decides
                }
            }
        }
    }
}

} // namespace photon::lint
