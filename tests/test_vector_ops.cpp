/** @file Parameterised semantics sweep over the vector ALU. */

#include <bit>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "func/emulator.hpp"
#include "isa/builder.hpp"

using namespace photon;
using namespace photon::isa;

namespace {

/** Runs op(dst, a, b) for scalar operands and returns lane 0 of dst. */
std::uint32_t
evalBinary(Opcode op, std::uint32_t a, std::uint32_t b)
{
    KernelBuilder builder("bin");
    builder.vMov(1, imm(static_cast<std::int64_t>(a)));
    builder.vMov(2, imm(static_cast<std::int64_t>(b)));
    builder.emit(op, vreg(3), vreg(1), vreg(2));
    builder.endProgram();
    ProgramPtr prog = builder.finish();

    func::Emulator emu;
    func::GlobalMemory mem(4096 + 64);
    func::WaveState ws;
    ws.init(*prog, func::LaunchDims{1, 1, 0}, 0);
    std::vector<std::uint8_t> lds;
    emu.runWave(*prog, ws, mem, lds);
    return ws.v(3, 0);
}

std::uint32_t
bits(float f)
{
    return std::bit_cast<std::uint32_t>(f);
}

struct BinCase
{
    Opcode op;
    std::uint32_t a, b, expect;
};

class VectorBinary : public ::testing::TestWithParam<BinCase>
{};

} // namespace

TEST_P(VectorBinary, Lane0Semantics)
{
    const BinCase &c = GetParam();
    EXPECT_EQ(evalBinary(c.op, c.a, c.b), c.expect)
        << opcodeName(c.op);
}

INSTANTIATE_TEST_SUITE_P(
    IntegerOps, VectorBinary,
    ::testing::Values(
        BinCase{Opcode::V_ADD_U32, 7, 8, 15},
        BinCase{Opcode::V_ADD_U32, 0xffffffff, 2, 1}, // wraps
        BinCase{Opcode::V_SUB_U32, 3, 5, 0xfffffffe},
        BinCase{Opcode::V_MUL_LO_U32, 0x10000, 0x10000, 0}, // low bits
        BinCase{Opcode::V_LSHL_B32, 1, 31, 0x80000000},
        BinCase{Opcode::V_LSHL_B32, 1, 33, 2}, // shift amount masked
        BinCase{Opcode::V_LSHR_B32, 0x80000000, 31, 1},
        BinCase{Opcode::V_ASHR_I32, 0x80000000, 31, 0xffffffff},
        BinCase{Opcode::V_AND_B32, 0xff00ff00, 0x0ff00ff0, 0x0f000f00},
        BinCase{Opcode::V_OR_B32, 0xf0f0f0f0, 0x0f0f0f0f, 0xffffffff},
        BinCase{Opcode::V_XOR_B32, 0xffff0000, 0xff00ff00, 0x00ffff00},
        BinCase{Opcode::V_MAX_U32, 5, 9, 9},
        BinCase{Opcode::V_MIN_U32, 5, 9, 5}));

INSTANTIATE_TEST_SUITE_P(
    FloatOps, VectorBinary,
    ::testing::Values(
        BinCase{Opcode::V_ADD_F32, bits(1.5f), bits(2.25f), bits(3.75f)},
        BinCase{Opcode::V_SUB_F32, bits(1.0f), bits(4.0f), bits(-3.0f)},
        BinCase{Opcode::V_MUL_F32, bits(3.0f), bits(-2.0f), bits(-6.0f)},
        BinCase{Opcode::V_MAX_F32, bits(-1.0f), bits(2.0f), bits(2.0f)},
        BinCase{Opcode::V_MIN_F32, bits(-1.0f), bits(2.0f), bits(-1.0f)}));

namespace {

struct CmpCase
{
    Opcode op;
    std::uint32_t a, b;
    bool expect;
};

class VectorCompare : public ::testing::TestWithParam<CmpCase>
{};

} // namespace

TEST_P(VectorCompare, Lane0VccBit)
{
    const CmpCase &c = GetParam();
    KernelBuilder builder("cmp");
    builder.vMov(1, imm(static_cast<std::int64_t>(c.a)));
    builder.vMov(2, imm(static_cast<std::int64_t>(c.b)));
    builder.emit(c.op, {}, vreg(1), vreg(2));
    builder.endProgram();
    ProgramPtr prog = builder.finish();
    func::Emulator emu;
    func::GlobalMemory mem(4096 + 64);
    func::WaveState ws;
    ws.init(*prog, func::LaunchDims{1, 1, 0}, 0);
    std::vector<std::uint8_t> lds;
    emu.runWave(*prog, ws, mem, lds);
    EXPECT_EQ((ws.vcc & 1) != 0, c.expect) << opcodeName(c.op);
}

INSTANTIATE_TEST_SUITE_P(
    AllCompares, VectorCompare,
    ::testing::Values(
        CmpCase{Opcode::V_CMP_LT_U32, 1, 2, true},
        CmpCase{Opcode::V_CMP_GE_U32, 2, 2, true},
        CmpCase{Opcode::V_CMP_EQ_U32, 3, 3, true},
        CmpCase{Opcode::V_CMP_NE_U32, 3, 3, false},
        // Signed: -1 < 1 but 0xffffffff > 1 unsigned.
        CmpCase{Opcode::V_CMP_LT_I32, 0xffffffff, 1, true},
        CmpCase{Opcode::V_CMP_LT_U32, 0xffffffff, 1, false},
        CmpCase{Opcode::V_CMP_GE_I32, 0, 0xffffffff, true},
        CmpCase{Opcode::V_CMP_LT_F32, bits(-2.5f), bits(1.0f), true},
        CmpCase{Opcode::V_CMP_GT_F32, bits(-2.5f), bits(1.0f), false},
        CmpCase{Opcode::V_CMP_GE_F32, bits(1.0f), bits(1.0f), true}));

namespace {

/** Property: for any per-lane address pattern, coalesced lines cover
 *  exactly the distinct lines and nothing else. */
void
coalesceProperty(std::uint32_t stride, std::uint32_t offset)
{
    func::GlobalMemory mem(16 << 20);
    Addr base = mem.allocate(8 << 20);
    KernelBuilder b("coalesce");
    b.vMad(1, vreg(0), imm(stride),
           imm(static_cast<std::int64_t>(base + offset)));
    b.flatLoad(2, 1);
    b.endProgram();
    ProgramPtr prog = b.finish();

    func::Emulator emu;
    func::WaveState ws;
    ws.init(*prog, func::LaunchDims{1, 1, 0}, 0);
    func::StepResult res;
    std::vector<std::uint8_t> lds;
    emu.step(*prog, ws, mem, lds, res); // vMad
    emu.step(*prog, ws, mem, lds, res); // load

    std::set<Addr> expect;
    for (unsigned lane = 0; lane < 64; ++lane)
        expect.insert((base + offset + std::uint64_t{lane} * stride) / 64);
    std::set<Addr> got(res.lines.begin(),
                       res.lines.begin() + res.numLines);
    EXPECT_EQ(got, expect) << "stride " << stride << " offset " << offset;
    EXPECT_EQ(res.numLines, expect.size());
}

} // namespace

TEST(Coalescing, PropertyAcrossStridesAndOffsets)
{
    for (std::uint32_t stride : {0u, 4u, 8u, 12u, 60u, 64u, 68u, 256u,
                                 1024u, 4096u}) {
        for (std::uint32_t offset : {0u, 4u, 60u})
            coalesceProperty(stride, offset);
    }
}

TEST(Coalescing, MaskedLanesContributeNothing)
{
    func::GlobalMemory mem(1 << 20);
    Addr base = mem.allocate(64 * 64);
    KernelBuilder b("masked");
    b.vMad(1, vreg(0), imm(64), imm(static_cast<std::int64_t>(base)));
    b.emit(Opcode::V_CMP_LT_U32, {}, vreg(0), imm(3));
    b.emit(Opcode::S_AND_MASK, mreg(kMaskExec), mreg(kMaskExec),
           mreg(kMaskVcc));
    b.flatLoad(2, 1);
    b.endProgram();
    ProgramPtr prog = b.finish();
    func::Emulator emu;
    func::WaveState ws;
    ws.init(*prog, func::LaunchDims{1, 1, 0}, 0);
    func::StepResult res;
    std::vector<std::uint8_t> lds;
    for (int i = 0; i < 4; ++i)
        emu.step(*prog, ws, mem, lds, res);
    EXPECT_EQ(res.numLines, 3u); // only lanes 0..2, one line each
    EXPECT_EQ(res.activeLanes, 3u);
}
