file(REMOVE_RECURSE
  "CMakeFiles/test_event_core.dir/test_event_core.cpp.o"
  "CMakeFiles/test_event_core.dir/test_event_core.cpp.o.d"
  "test_event_core"
  "test_event_core.pdb"
  "test_event_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_event_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
