/**
 * @file
 * Event-capture probe shared by the observation figures (2, 3, 4): runs
 * one kernel in full detail and records every warp and basic-block
 * timing event.
 */

#ifndef PHOTON_BENCH_OBS_UTIL_HPP
#define PHOTON_BENCH_OBS_UTIL_HPP

#include <unordered_map>
#include <vector>

#include "bench_util.hpp"
#include "sampling/bbv.hpp"
#include "timing/gpu.hpp"
#include "timing/monitor.hpp"

namespace photon::bench {

/** One timed event (warp or basic-block execution). */
struct TimedEvent
{
    Cycle issue = 0;
    Cycle retire = 0;

    double duration() const
    {
        return static_cast<double>(retire - issue);
    }
};

/** Captures all warp/BB events of one kernel. */
class ObservationProbe : public timing::KernelMonitor
{
  public:
    void
    onWaveDispatched(WarpId w, Cycle now) override
    {
        dispatch_[w] = now;
    }

    void
    onWaveRetired(WarpId w, Cycle now, std::uint64_t) override
    {
        warps.push_back({dispatch_[w], now});
    }

    void
    onBbExecuted(WarpId, isa::BbId bb, Cycle issue, Cycle retire,
                 std::uint32_t lanes) override
    {
        bbEvents[sampling::bbSlot(bb, lanes)].push_back({issue, retire});
    }

    /** Slot with the largest total execution time ("dominating" in the
     *  paper's sense). */
    std::uint32_t
    dominatingSlot() const
    {
        std::uint32_t best = 0;
        double best_total = -1;
        for (const auto &[slot, evs] : bbEvents) {
            double total = 0;
            for (const TimedEvent &e : evs)
                total += e.duration();
            if (total > best_total) {
                best_total = total;
                best = slot;
            }
        }
        return best;
    }

    std::vector<TimedEvent> warps;
    std::unordered_map<std::uint32_t, std::vector<TimedEvent>> bbEvents;

  private:
    std::unordered_map<WarpId, Cycle> dispatch_;
};

/** Run workload's first kernel fully detailed with the probe attached. */
inline timing::RunOutcome
observeKernel(const workloads::WorkloadPtr &w, driver::Platform &platform,
              ObservationProbe &probe)
{
    w->setup(platform);
    const auto &spec = w->launches()[0];
    func::LaunchDims dims{spec.numWorkgroups, spec.wavesPerWorkgroup,
                          spec.kernarg};
    return platform.gpu().runKernel(*spec.program, dims, platform.mem(),
                                    &probe);
}

} // namespace photon::bench

#endif // PHOTON_BENCH_OBS_UTIL_HPP
