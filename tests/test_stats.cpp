/** @file Unit tests for the stat registry. */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hpp"

using photon::StatRegistry;

TEST(Stats, AddAccumulates)
{
    StatRegistry s;
    s.add("x", 1);
    s.add("x", 2.5);
    EXPECT_DOUBLE_EQ(s.get("x"), 3.5);
}

TEST(Stats, SetOverwrites)
{
    StatRegistry s;
    s.add("x", 10);
    s.set("x", 2);
    EXPECT_DOUBLE_EQ(s.get("x"), 2);
}

TEST(Stats, UnknownReadsZero)
{
    StatRegistry s;
    EXPECT_DOUBLE_EQ(s.get("nope"), 0.0);
    EXPECT_FALSE(s.has("nope"));
}

TEST(Stats, MergeSums)
{
    StatRegistry a, b;
    a.add("x", 1);
    b.add("x", 2);
    b.add("y", 3);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.get("x"), 3);
    EXPECT_DOUBLE_EQ(a.get("y"), 3);
}

TEST(Stats, ClearEmpties)
{
    StatRegistry s;
    s.add("x", 1);
    s.clear();
    EXPECT_FALSE(s.has("x"));
}

TEST(Stats, PrintContainsAllNamesSorted)
{
    StatRegistry s;
    s.add("b.two", 2);
    s.add("a.one", 1);
    std::ostringstream os;
    s.print(os, "st.");
    std::string text = os.str();
    auto pa = text.find("st.a.one");
    auto pb = text.find("st.b.two");
    EXPECT_NE(pa, std::string::npos);
    EXPECT_NE(pb, std::string::npos);
    EXPECT_LT(pa, pb);
}
