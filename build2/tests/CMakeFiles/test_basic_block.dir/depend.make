# Empty dependencies file for test_basic_block.
# This may be replaced when dependencies are built.
