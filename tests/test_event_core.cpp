/**
 * @file
 * Determinism tests for the event-driven run loop: the event core must
 * match the reference per-cycle scanning loop (useSeedLoop) exactly, and
 * parallel CU ticking (cuThreads > 1) must be bit-identical to serial —
 * same cycles, instruction counts, IPC trace, monitor callback stream
 * and exported statistics — across workloads and simulation modes.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "driver/platform.hpp"
#include "isa/builder.hpp"
#include "service/campaign.hpp"
#include "timing/dispatcher.hpp"
#include "timing/gpu.hpp"
#include "timing/monitor.hpp"
#include "workloads/workload.hpp"

using namespace photon;
using namespace photon::isa;
using timing::Gpu;
using timing::KernelMonitor;
using timing::RunOptions;
using timing::RunOutcome;

namespace {

ProgramPtr
aluKernel(std::uint32_t iters)
{
    KernelBuilder b("alu");
    b.sMov(3, imm(0));
    Label loop = b.label();
    b.bind(loop);
    b.vAddF32(1, vreg(1), immF(1.0f));
    b.sAdd(3, sreg(3), imm(1));
    b.emit(Opcode::S_CMP_LT_U32, {}, sreg(3), imm(iters));
    b.branch(Opcode::S_CBRANCH_SCC1, loop);
    b.endProgram();
    return b.finish();
}

ProgramPtr
barrierKernel()
{
    KernelBuilder b("barrier");
    b.setLdsBytes(256);
    b.emit(Opcode::V_LSHL_B32, vreg(1), sreg(kSgprWaveInGroup), imm(2));
    b.dsWrite(1, sreg(kSgprWaveInGroup));
    b.barrier();
    b.emit(Opcode::S_XOR_B32, sreg(3), sreg(kSgprWaveInGroup), imm(1));
    b.emit(Opcode::V_LSHL_B32, vreg(2), sreg(3), imm(2));
    b.dsRead(3, 2);
    b.endProgram();
    return b.finish();
}

ProgramPtr
memKernel(std::uint32_t iters)
{
    KernelBuilder b("mem");
    b.sMov(3, imm(0));
    b.vMad(1, vreg(0), imm(64), imm(64)); // scattered line per lane
    Label loop = b.label();
    b.bind(loop);
    b.flatLoad(2, 1);
    b.vAddU32(1, vreg(1), imm(64 * 64));
    b.sAdd(3, sreg(3), imm(1));
    b.emit(Opcode::S_CMP_LT_U32, {}, sreg(3), imm(iters));
    b.branch(Opcode::S_CBRANCH_SCC1, loop);
    b.endProgram();
    return b.finish();
}

/** FNV-1a hash over the full monitor callback stream: any reordering,
 *  dropped or extra callback between two runs changes the hash. */
struct HashingMonitor : KernelMonitor
{
    std::uint64_t h = 1469598103934665603ull;

    void
    mix(std::uint64_t v)
    {
        h ^= v;
        h *= 1099511628211ull;
    }
    void
    onWaveDispatched(WarpId w, Cycle c) override
    {
        mix(1), mix(w), mix(c);
    }
    void
    onWaveRetired(WarpId w, Cycle c, std::uint64_t insts) override
    {
        mix(2), mix(w), mix(c), mix(insts);
    }
    void
    onInstruction(WarpId w, const func::StepResult &, Cycle issue,
                  Cycle complete) override
    {
        mix(3), mix(w), mix(issue), mix(complete);
    }
    void
    onBbExecuted(WarpId w, isa::BbId bb, Cycle issue, Cycle retire,
                 std::uint32_t lanes) override
    {
        mix(4), mix(w), mix(bb), mix(issue), mix(retire), mix(lanes);
    }
};

/** Full-outcome equality, including the IPC trace and the occupancy
 *  integrals. */
void
expectSameOutcome(const RunOutcome &a, const RunOutcome &b,
                  const std::string &what)
{
    EXPECT_EQ(a.cycles(), b.cycles()) << what;
    EXPECT_EQ(a.endCycle, b.endCycle) << what;
    EXPECT_EQ(a.instsIssued, b.instsIssued) << what;
    EXPECT_EQ(a.wavesCompleted, b.wavesCompleted) << what;
    EXPECT_EQ(a.stoppedEarly, b.stoppedEarly) << what;
    EXPECT_EQ(a.firstUndispatchedWg, b.firstUndispatchedWg) << what;
    EXPECT_EQ(a.activeCycles, b.activeCycles) << what;
    EXPECT_EQ(a.busyCuCycles, b.busyCuCycles) << what;
    EXPECT_EQ(a.waveCycles, b.waveCycles) << what;
    EXPECT_EQ(a.ipcTrace, b.ipcTrace) << what;
}

struct GpuRun
{
    RunOutcome out;
    std::uint64_t monitorHash = 0;
    std::map<std::string, double> stats;
};

/** Drop the statistics that describe the synchronization protocol
 *  itself (epoch counts, barrier crossings): they legitimately differ
 *  between serial and parallel runs of the same simulation. */
void
eraseSyncStats(std::map<std::string, double> &stats)
{
    stats.erase("gpu.epochs");
    stats.erase("gpu.epoch_cycles");
    stats.erase("gpu.mean_epoch_cycles");
    stats.erase("gpu.barrier_crossings");
}

GpuRun
runOnGpu(const ProgramPtr &prog, func::LaunchDims dims,
         std::uint64_t mem_bytes, const RunOptions &opts)
{
    Gpu gpu(GpuConfig::testTiny());
    func::GlobalMemory mem(mem_bytes);
    if (mem_bytes > (1 << 20))
        mem.allocate(mem_bytes / 2); // back the loads
    HashingMonitor mon;
    GpuRun r;
    r.out = gpu.runKernel(*prog, dims, mem, &mon, opts);
    r.monitorHash = mon.h;
    StatRegistry reg;
    gpu.exportStats(reg);
    r.stats = reg.values();
    eraseSyncStats(r.stats);
    return r;
}

/** Like runOnGpu but with no monitor attached, which is the condition
 *  for the epoch-synchronized parallel loop to engage. */
GpuRun
runOnGpuNoMonitor(const ProgramPtr &prog, func::LaunchDims dims,
                  std::uint64_t mem_bytes, const RunOptions &opts)
{
    Gpu gpu(GpuConfig::testTiny());
    func::GlobalMemory mem(mem_bytes);
    if (mem_bytes > (1 << 20))
        mem.allocate(mem_bytes / 2); // back the loads
    GpuRun r;
    r.out = gpu.runKernel(*prog, dims, mem, nullptr, opts);
    StatRegistry reg;
    gpu.exportStats(reg);
    r.stats = reg.values();
    eraseSyncStats(r.stats);
    return r;
}

/** The three kernel shapes that exercise distinct run-loop paths:
 *  ALU-bound (dense issue), barrier (wave-slot lists + releases), and
 *  memory-bound (L1V probe/commit, MSHRs, long idle gaps). */
const struct KernelCase
{
    const char *name;
    ProgramPtr (*build)();
    func::LaunchDims dims;
    std::uint64_t memBytes;
} kKernelCases[] = {
    {"alu", [] { return aluKernel(20); }, {16, 4, 0}, 1 << 20},
    {"barrier", [] { return barrierKernel(); }, {8, 2, 0}, 1 << 20},
    {"mem", [] { return memKernel(12); }, {32, 4, 0}, 64ull << 20},
};

} // namespace

TEST(EventCore, EventLoopMatchesSeedLoop)
{
    for (const auto &kc : kKernelCases) {
        ProgramPtr prog = kc.build();
        RunOptions opts;
        opts.collectIpcTrace = true;
        opts.ipcBucketCycles = 64;
        GpuRun ev = runOnGpu(prog, kc.dims, kc.memBytes, opts);
        opts.useSeedLoop = true;
        GpuRun seed = runOnGpu(prog, kc.dims, kc.memBytes, opts);
        expectSameOutcome(ev.out, seed.out, kc.name);
        EXPECT_EQ(ev.monitorHash, seed.monitorHash) << kc.name;
        EXPECT_EQ(ev.stats, seed.stats) << kc.name;
    }
}

TEST(EventCore, ThreadedBitIdenticalToSerial)
{
    for (const auto &kc : kKernelCases) {
        ProgramPtr prog = kc.build();
        RunOptions opts;
        opts.collectIpcTrace = true;
        opts.ipcBucketCycles = 64;
        opts.cuThreads = 1;
        GpuRun serial = runOnGpu(prog, kc.dims, kc.memBytes, opts);
        for (std::uint32_t threads : {2u, 4u}) {
            opts.cuThreads = threads;
            GpuRun par = runOnGpu(prog, kc.dims, kc.memBytes, opts);
            std::string what = std::string(kc.name) + " threads=" +
                               std::to_string(threads);
            expectSameOutcome(serial.out, par.out, what);
            EXPECT_EQ(serial.monitorHash, par.monitorHash) << what;
            EXPECT_EQ(serial.stats, par.stats) << what;
        }
    }
}

/** Monitor-free parallel runs take the epoch-synchronized loop; the
 *  outcome (including occupancy integrals) must be bit-identical to the
 *  serial event core, and the epoch statistics must be populated. */
TEST(EventCore, EpochLoopBitIdenticalToSerial)
{
    for (const auto &kc : kKernelCases) {
        ProgramPtr prog = kc.build();
        RunOptions opts;
        opts.cuThreads = 1;
        GpuRun serial = runOnGpuNoMonitor(prog, kc.dims, kc.memBytes,
                                          opts);
        EXPECT_EQ(serial.out.epochs, 0u) << kc.name;
        for (std::uint32_t threads : {2u, 4u}) {
            opts.cuThreads = threads;
            GpuRun par = runOnGpuNoMonitor(prog, kc.dims, kc.memBytes,
                                           opts);
            std::string what = std::string(kc.name) + " threads=" +
                               std::to_string(threads);
            expectSameOutcome(serial.out, par.out, what);
            EXPECT_EQ(serial.stats, par.stats) << what;
            // The epoch loop ran: every epoch covers >= 1 cycle and
            // costs exactly two barrier crossings.
            EXPECT_GT(par.out.epochs, 0u) << what;
            EXPECT_GE(par.out.epochCycleSum, par.out.epochs) << what;
            EXPECT_LE(par.out.epochCycleSum, par.out.cycles()) << what;
            EXPECT_EQ(par.out.barrierCrossings, 2 * par.out.epochs)
                << what;
        }
    }
}

/** Multi-cycle epochs actually happen: on the ALU kernel the safe
 *  horizon is bounded below by the L1I hit latency, so the mean epoch
 *  must span more than one cycle (the whole point of the protocol). */
TEST(EventCore, EpochsSpanMultipleCycles)
{
    ProgramPtr prog = aluKernel(20);
    RunOptions opts;
    opts.cuThreads = 4;
    GpuRun par = runOnGpuNoMonitor(prog, {16, 4, 0}, 1 << 20, opts);
    ASSERT_GT(par.out.epochs, 0u);
    EXPECT_GT(par.out.epochCycleSum, par.out.epochs);
    // Far fewer barrier crossings than the per-cycle protocol's two per
    // simulated cycle.
    EXPECT_LT(par.out.barrierCrossings, par.out.cycles());
}

/** maxEpochCycles=1 degenerates every epoch to a single cycle, forcing
 *  every issue through the park/replay boundary machinery; the results
 *  must not move. */
TEST(EventCore, EpochCap1MatchesUncapped)
{
    for (const auto &kc : kKernelCases) {
        ProgramPtr prog = kc.build();
        RunOptions opts;
        opts.cuThreads = 4;
        GpuRun free_run = runOnGpuNoMonitor(prog, kc.dims, kc.memBytes,
                                            opts);
        opts.maxEpochCycles = 1;
        GpuRun capped = runOnGpuNoMonitor(prog, kc.dims, kc.memBytes,
                                          opts);
        std::string what = std::string(kc.name) + " epoch-cap=1";
        expectSameOutcome(free_run.out, capped.out, what);
        EXPECT_EQ(free_run.stats, capped.stats) << what;
        // Each capped epoch covers exactly one cycle.
        EXPECT_EQ(capped.out.epochCycleSum, capped.out.epochs) << what;
        EXPECT_GE(capped.out.epochs, free_run.out.epochs) << what;
    }
}

TEST(EventCore, EarlyStopIdenticalAcrossLoops)
{
    struct StopAfter : KernelMonitor
    {
        std::uint64_t retired = 0;
        bool wantsStop(Cycle) override { return retired >= 8; }
        void
        onWaveRetired(WarpId, Cycle, std::uint64_t) override
        {
            ++retired;
        }
    };
    ProgramPtr prog = aluKernel(10);
    func::LaunchDims dims{512, 4, 0}; // far more than residency
    auto run = [&](const RunOptions &opts) {
        Gpu gpu(GpuConfig::testTiny());
        func::GlobalMemory mem(1 << 20);
        StopAfter mon;
        return gpu.runKernel(*prog, dims, mem, &mon, opts);
    };
    RunOptions opts;
    RunOutcome ev = run(opts);
    opts.useSeedLoop = true;
    RunOutcome seed = run(opts);
    opts.useSeedLoop = false;
    opts.cuThreads = 4;
    RunOutcome par = run(opts);
    EXPECT_TRUE(ev.stoppedEarly);
    expectSameOutcome(ev, seed, "early-stop seed");
    expectSameOutcome(ev, par, "early-stop threaded");
}

TEST(EventCore, OccupancyIntegralsAreConsistent)
{
    ProgramPtr prog = aluKernel(20);
    Gpu gpu(GpuConfig::testTiny());
    func::GlobalMemory mem(1 << 20);
    func::LaunchDims dims{8, 4, 0};
    RunOutcome out = gpu.runKernel(*prog, dims, mem);
    const std::uint32_t cus = GpuConfig::testTiny().numCus;
    EXPECT_GT(out.activeCycles, 0u);
    EXPECT_LE(out.activeCycles, out.cycles());
    // Each active cycle has between 1 and numCus busy CUs...
    EXPECT_GE(out.busyCuCycles, out.activeCycles);
    EXPECT_LE(out.busyCuCycles, out.activeCycles * cus);
    // ...and each busy CU holds at least one resident wavefront.
    EXPECT_GE(out.waveCycles, out.busyCuCycles);
}

TEST(EventCore, GpuStatsExposeOccupancyCounters)
{
    ProgramPtr prog = aluKernel(10);
    Gpu gpu(GpuConfig::testTiny());
    func::GlobalMemory mem(1 << 20);
    func::LaunchDims dims{8, 4, 0};
    gpu.runKernel(*prog, dims, mem);
    StatRegistry reg;
    gpu.exportStats(reg);
    EXPECT_EQ(reg.get("gpu.kernels"), 1.0);
    EXPECT_GT(reg.get("gpu.active_cycles"), 0.0);
    EXPECT_GT(reg.get("gpu.busy_cu_cycles"), 0.0);
    EXPECT_GT(reg.get("gpu.wave_cycles"), 0.0);
    EXPECT_TRUE(reg.has("gpu.avg_busy_cus"));
    EXPECT_TRUE(reg.has("gpu.avg_resident_waves"));
    // L1I sees instruction fetches even for a pure-ALU kernel; the new
    // per-cache counters must be present (L1K may be all hits or all
    // misses but the keys always export).
    EXPECT_GT(reg.get("mem.l1i.hits") + reg.get("mem.l1i.misses"), 0.0);
    EXPECT_TRUE(reg.has("mem.l1k.hits"));
    EXPECT_TRUE(reg.has("mem.l1k.misses"));
}

TEST(EventCore, DispatcherRetryFlagGatesRescans)
{
    GpuConfig cfg = GpuConfig::testTiny();
    timing::MemorySystem memsys(cfg);
    func::Emulator emu;
    std::vector<timing::ComputeUnit> cus;
    cus.reserve(cfg.numCus);
    for (std::uint32_t i = 0; i < cfg.numCus; ++i)
        cus.emplace_back(cfg, i, memsys, emu);

    ProgramPtr prog = aluKernel(4);
    isa::BasicBlockTable bb_table(*prog, false);
    func::GlobalMemory mem(1 << 20);
    func::LaunchDims dims{1024, 4, 0}; // far exceeds total residency
    timing::KernelContext ctx;
    ctx.program = prog.get();
    ctx.bbTable = &bb_table;
    ctx.dims = &dims;
    ctx.mem = &mem;
    for (auto &cu : cus)
        cu.startKernel(ctx);

    timing::Dispatcher d(cus);
    d.startKernel(dims.numWorkgroups);
    EXPECT_TRUE(d.wantsDispatch());

    // Fill every CU. The retry flag must clear: nothing changed, so a
    // rescan could not place anything.
    d.tryDispatch(0);
    EXPECT_FALSE(d.allDispatched());
    EXPECT_FALSE(d.wantsDispatch());

    // Freed capacity re-arms the flag; halt()/resume() override it.
    d.notifyCapacityFreed();
    EXPECT_TRUE(d.wantsDispatch());
    d.halt();
    EXPECT_FALSE(d.wantsDispatch());
    d.resume();
    EXPECT_TRUE(d.wantsDispatch());
}

namespace {

struct PlatformRun
{
    Cycle cycles = 0;
    std::uint64_t insts = 0;
    std::map<std::string, double> stats;
};

PlatformRun
runWorkload(const std::string &name, std::uint32_t size,
            driver::SimMode mode, std::uint32_t cu_threads)
{
    driver::Platform p(GpuConfig::testTiny(), mode);
    if (cu_threads > 1)
        p.setCuThreads(cu_threads);
    std::string err;
    workloads::WorkloadPtr w = service::makeWorkload(name, size, &err);
    EXPECT_NE(w, nullptr) << err;
    w->setup(p);
    workloads::runWorkload(*w, p);
    PlatformRun r;
    r.cycles = p.totalKernelCycles();
    r.insts = p.totalInsts();
    r.stats = p.stats().values();
    r.stats.erase("platform.total_wall_seconds"); // host-time dependent
    eraseSyncStats(r.stats);
    return r;
}

} // namespace

/**
 * The determinism matrix from the issue: every workload, in both
 * full-detailed and Photon modes, must produce bit-identical cycles,
 * instruction counts and statistics for --cu-threads 1, 2 and 4. The
 * Photon runs also cover cuThreads inheritance by the sampler's
 * internal detailed runs (setCuThreads default plumbing).
 */
TEST(EventCore, WorkloadsBitIdenticalAcrossCuThreads)
{
    const struct
    {
        const char *name;
        std::uint32_t size;
    } cases[] = {
        {"relu", 64}, {"fir", 64},     {"sc", 64},  {"mm", 64},
        {"mmtiled", 64}, {"aes", 32},  {"spmv", 64}, {"pagerank", 64},
    };
    for (auto mode :
         {driver::SimMode::FullDetailed, driver::SimMode::Photon}) {
        for (const auto &c : cases) {
            PlatformRun serial = runWorkload(c.name, c.size, mode, 1);
            for (std::uint32_t threads : {2u, 4u}) {
                PlatformRun par =
                    runWorkload(c.name, c.size, mode, threads);
                std::string what = std::string(c.name) + " " +
                                   driver::simModeName(mode) +
                                   " threads=" + std::to_string(threads);
                EXPECT_EQ(serial.cycles, par.cycles) << what;
                EXPECT_EQ(serial.insts, par.insts) << what;
                EXPECT_EQ(serial.stats, par.stats) << what;
            }
        }
    }
}
