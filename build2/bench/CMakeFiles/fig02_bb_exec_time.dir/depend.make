# Empty dependencies file for fig02_bb_exec_time.
# This may be replaced when dependencies are built.
