#!/usr/bin/env bash
# Full local gate: configure + build (warnings are errors), tier-1
# tests, and the photon_lint phase-safety/determinism pass — the same
# three checks CI runs on every push. Usage: scripts/check.sh [builddir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

cmake -B "$BUILD" -S . -DCMAKE_CXX_FLAGS=-Werror
cmake --build "$BUILD" -j
ctest --test-dir "$BUILD" --output-on-failure -j
cmake --build "$BUILD" --target lint

echo "check.sh: build, tests and lint all green"
