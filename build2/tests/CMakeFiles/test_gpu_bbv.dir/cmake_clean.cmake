file(REMOVE_RECURSE
  "CMakeFiles/test_gpu_bbv.dir/test_gpu_bbv.cpp.o"
  "CMakeFiles/test_gpu_bbv.dir/test_gpu_bbv.cpp.o.d"
  "test_gpu_bbv"
  "test_gpu_bbv.pdb"
  "test_gpu_bbv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpu_bbv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
