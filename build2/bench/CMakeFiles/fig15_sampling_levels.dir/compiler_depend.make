# Empty compiler generated dependencies file for fig15_sampling_levels.
# This may be replaced when dependencies are built.
