/**
 * @file
 * photond load harness: many synthetic clients hammer one in-process
 * SimServer with a request mix that repeats a small set of distinct
 * specs, the way a real simulation service sees the same kernels from
 * many users. Reports the shared-cache economics (hit rate, dedup
 * collapses, jobs actually executed) and client-visible request
 * latency (p50/p99 nearest-rank) for a cold and a warm pass.
 *
 * The assignment of specs to requests is deterministic (client index
 * and request index only), so two runs issue the identical load.
 *
 * Writes BENCH_serve.json in the working directory for the CI
 * perf-smoke artifact. `--quick` shrinks the client count for CI.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "driver/report.hpp"
#include "serve/server.hpp"

using namespace photon;
using namespace photon::serve;

namespace {

/** One measured pass over the request schedule. */
struct PassResult
{
    std::string pass;
    std::size_t clients = 0;
    std::size_t requests = 0;
    std::uint64_t jobsExecuted = 0;
    std::uint64_t dedupCollapsed = 0;
    std::uint64_t cacheHits = 0;   ///< kernel-cache lookup hits
    std::uint64_t cacheMisses = 0;
    std::uint64_t requestCacheHits = 0; ///< requests fully cache-served
    double hitRate = 0.0;          ///< kernel-cache lookup hit rate
    double wallSeconds = 0.0;
    double p50Ms = 0.0;
    double p99Ms = 0.0;
    double throughput = 0.0; ///< requests per second
};

/** The distinct specs the load repeats (tiny GPU: CI-sized). */
std::vector<service::JobSpec>
distinctSpecs()
{
    return {
        {"relu", 256, "photon", "tiny"},
        {"fir", 256, "photon", "tiny"},
        {"sc", 256, "photon", "tiny"},
        {"aes", 64, "photon", "tiny"},
    };
}

/** Deterministic request schedule: client c's i-th request. */
const service::JobSpec &
specFor(const std::vector<service::JobSpec> &specs, std::size_t client,
        std::size_t i)
{
    return specs[(client + i) % specs.size()];
}

/** Nearest-rank percentile of an unsorted latency sample, in ms. */
double
percentileMs(std::vector<double> sorted, double pct)
{
    if (sorted.empty())
        return 0.0;
    std::sort(sorted.begin(), sorted.end());
    std::size_t rank = static_cast<std::size_t>(
        pct / 100.0 * static_cast<double>(sorted.size()));
    if (rank >= sorted.size())
        rank = sorted.size() - 1;
    return sorted[rank] * 1e3;
}

/** Run @p clients x @p perClient requests against @p server. */
PassResult
runPass(SimServer &server, const char *pass, std::size_t clients,
        std::size_t per_client)
{
    const std::vector<service::JobSpec> specs = distinctSpecs();
    StoreStats before = server.store().stats();

    std::vector<std::vector<double>> latencies(clients);
    std::vector<std::uint64_t> hits(clients, 0);
    std::vector<std::thread> threads;
    threads.reserve(clients);
    auto t0 = std::chrono::steady_clock::now();
    for (std::size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            latencies[c].reserve(per_client);
            for (std::size_t i = 0; i < per_client; ++i) {
                auto r0 = std::chrono::steady_clock::now();
                ServeResult r = server.runSync(specFor(specs, c, i));
                auto r1 = std::chrono::steady_clock::now();
                if (!r.ok) {
                    std::fprintf(stderr, "FAIL: %s: %s\n",
                                 r.spec.label().c_str(),
                                 r.error.c_str());
                    std::exit(1);
                }
                latencies[c].push_back(
                    std::chrono::duration<double>(r1 - r0).count());
                if (r.cacheHit)
                    ++hits[c];
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    auto t1 = std::chrono::steady_clock::now();

    StoreStats after = server.store().stats();
    PassResult out;
    out.pass = pass;
    out.clients = clients;
    out.requests = clients * per_client;
    out.jobsExecuted = after.jobsExecuted - before.jobsExecuted;
    out.dedupCollapsed = after.dedupCollapsed - before.dedupCollapsed;
    out.cacheHits = after.cacheHits - before.cacheHits;
    out.cacheMisses = after.cacheMisses - before.cacheMisses;
    std::uint64_t lookups = out.cacheHits + out.cacheMisses;
    out.hitRate = lookups ? static_cast<double>(out.cacheHits) /
                                static_cast<double>(lookups)
                          : 0.0;
    for (std::size_t c = 0; c < clients; ++c)
        out.requestCacheHits += hits[c];
    std::vector<double> all;
    all.reserve(out.requests);
    for (const auto &v : latencies)
        all.insert(all.end(), v.begin(), v.end());
    out.p50Ms = percentileMs(all, 50.0);
    out.p99Ms = percentileMs(all, 99.0);
    out.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
    out.throughput = out.wallSeconds > 0.0
                         ? static_cast<double>(out.requests) /
                               out.wallSeconds
                         : 0.0;
    return out;
}

void
writeJson(const std::vector<PassResult> &rows, std::uint32_t workers,
          const char *path)
{
    std::ofstream f(path);
    f << "{\n  \"bench\": \"serve_load\",\n";
    f << "  \"workers\": " << workers << ",\n";
    f << "  \"hardware_concurrency\": "
      << std::thread::hardware_concurrency() << ",\n";
    f << "  \"passes\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const PassResult &r = rows[i];
        f << "    {\"pass\": \"" << r.pass << "\", \"clients\": "
          << r.clients << ", \"requests\": " << r.requests
          << ", \"jobs_executed\": " << r.jobsExecuted
          << ", \"dedup_collapsed\": " << r.dedupCollapsed << ",\n"
          << "     \"cache_hits\": " << r.cacheHits
          << ", \"cache_misses\": " << r.cacheMisses
          << ", \"cache_hit_rate\": " << r.hitRate
          << ", \"request_cache_hits\": " << r.requestCacheHits << ",\n"
          << "     \"p50_ms\": " << r.p50Ms << ", \"p99_ms\": " << r.p99Ms
          << ", \"wall_seconds\": " << r.wallSeconds
          << ", \"throughput_rps\": " << r.throughput << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    f << "  ]\n}\n";
    std::printf("wrote %s\n", path);
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = bench::quickMode(argc, argv);
    const std::size_t clients = quick ? 4 : 8;
    const std::size_t per_client = quick ? 4 : 8;
    const std::uint32_t workers = 4;

    driver::printBanner(std::cout, "photond shared-cache load");
    std::printf("%zu clients x %zu requests over %zu distinct specs, "
                "%u resident workers\n\n",
                clients, per_client, distinctSpecs().size(), workers);

    ServerOptions o;
    o.workers = workers;
    SimServer server(o);

    // Cold pass: first touch of every distinct spec executes detailed;
    // overlapping identical requests collapse; the rest hit the cache.
    // Warm pass: the store already knows every kernel, so the whole
    // schedule should be answered from the shared cache.
    std::vector<PassResult> rows;
    rows.push_back(runPass(server, "cold", clients, per_client));
    rows.push_back(runPass(server, "warm", clients, per_client));

    driver::Table table({"pass", "requests", "executed", "collapsed",
                         "hit_rate", "p50_ms", "p99_ms", "req/s"});
    for (const PassResult &r : rows) {
        table.addRow({r.pass, std::to_string(r.requests),
                      std::to_string(r.jobsExecuted),
                      std::to_string(r.dedupCollapsed),
                      driver::Table::num(r.hitRate, 3),
                      driver::Table::num(r.p50Ms, 2),
                      driver::Table::num(r.p99Ms, 2),
                      driver::Table::num(r.throughput)});
    }
    table.print(std::cout);

    const PassResult &warm = rows.back();
    if (warm.requestCacheHits != warm.requests) {
        std::fprintf(stderr,
                     "FAIL: warm pass had %llu/%zu cache-served "
                     "requests (expected all)\n",
                     static_cast<unsigned long long>(
                         warm.requestCacheHits),
                     warm.requests);
        return 1;
    }
    std::printf("\nwarm pass fully cache-served: every request "
                "answered without a detailed run\n");

    writeJson(rows, workers, "BENCH_serve.json");
    return 0;
}
