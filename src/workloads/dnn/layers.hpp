/**
 * @file
 * DNN layer kernels: direct convolution, max/global-average pooling,
 * dense (fully connected), batch-norm (scale+shift), ReLU and residual
 * add — the kernel mix behind the paper's VGG and ResNet evaluations.
 *
 * All spatial/channel dimensions must be powers of two (index math uses
 * shifts, as the real kernels do for these shapes). Batch size is 1,
 * matching the paper. Layout is CHW.
 */

#ifndef PHOTON_WORKLOADS_DNN_LAYERS_HPP
#define PHOTON_WORKLOADS_DNN_LAYERS_HPP

#include <cstdint>
#include <vector>

#include "isa/program.hpp"

namespace photon::workloads::dnn {

/** Convolution geometry. */
struct ConvParams
{
    std::uint32_t inC = 1, inH = 1, inW = 1;
    std::uint32_t outC = 1;
    std::uint32_t kernel = 3; ///< square kernel
    std::uint32_t stride = 1;
    std::uint32_t pad = 1;

    std::uint32_t outH() const { return inH / stride; }
    std::uint32_t outW() const { return inW / stride; }
    std::uint64_t
    weightCount() const
    {
        return std::uint64_t{outC} * inC * kernel * kernel;
    }
    std::uint32_t
    outputCount() const
    {
        return outC * outH() * outW();
    }
};

/** kernarg: in, w, out. */
isa::ProgramPtr buildConv(const ConvParams &p);

/** 2x2 stride-2 max pooling. kernarg: in, out. */
isa::ProgramPtr buildMaxPool(std::uint32_t c, std::uint32_t in_h,
                             std::uint32_t in_w);

/** Global average pooling to 1x1. kernarg: in, out. */
isa::ProgramPtr buildGlobalAvgPool(std::uint32_t c, std::uint32_t in_h,
                                   std::uint32_t in_w);

/** Dense layer out[o] = sum_i in[i] * w[o*inN + i]. kernarg: in, w, out. */
isa::ProgramPtr buildDense(std::uint32_t in_n, std::uint32_t out_n);

/** Elementwise ReLU over n values. kernarg: in, out, n. */
isa::ProgramPtr buildReluN();

/** Elementwise residual add over n values. kernarg: a, b, out, n. */
isa::ProgramPtr buildAddN();

/** Per-channel scale+shift (inference batch-norm).
 *  kernarg: in, gamma, beta, out. */
isa::ProgramPtr buildBatchNorm(std::uint32_t c, std::uint32_t hw);

// ----- Host references (used by Workload::check and the unit tests) ---

void refConv(const ConvParams &p, const std::vector<float> &in,
             const std::vector<float> &w, std::vector<float> &out);
void refMaxPool(std::uint32_t c, std::uint32_t in_h, std::uint32_t in_w,
                const std::vector<float> &in, std::vector<float> &out);
void refGlobalAvgPool(std::uint32_t c, std::uint32_t in_h,
                      std::uint32_t in_w, const std::vector<float> &in,
                      std::vector<float> &out);
void refDense(std::uint32_t in_n, std::uint32_t out_n,
              const std::vector<float> &in, const std::vector<float> &w,
              std::vector<float> &out);
void refRelu(const std::vector<float> &in, std::vector<float> &out);
void refAdd(const std::vector<float> &a, const std::vector<float> &b,
            std::vector<float> &out);
void refBatchNorm(std::uint32_t c, std::uint32_t hw,
                  const std::vector<float> &in,
                  const std::vector<float> &gamma,
                  const std::vector<float> &beta, std::vector<float> &out);

} // namespace photon::workloads::dnn

#endif // PHOTON_WORKLOADS_DNN_LAYERS_HPP
