/** @file Tests for the GPU configuration presets (paper Table 1). */

#include <gtest/gtest.h>

#include "sim/config.hpp"

using namespace photon;

TEST(Config, R9NanoMatchesTable1)
{
    GpuConfig c = GpuConfig::r9Nano();
    EXPECT_EQ(c.numCus, 64u);
    EXPECT_EQ(c.l1v.sizeBytes, 16u * 1024);
    EXPECT_EQ(c.l1v.ways, 4u);
    EXPECT_EQ(c.l1i.sizeBytes, 32u * 1024);
    EXPECT_EQ(c.l1k.sizeBytes, 16u * 1024);
    EXPECT_EQ(c.l2.sizeBytes, 256u * 1024);
    EXPECT_EQ(c.l2.ways, 16u);
    EXPECT_EQ(c.l2Banks, 8u);
    EXPECT_EQ(c.dram.sizeBytes, 4ull << 30);
}

TEST(Config, Mi100MatchesTable1)
{
    GpuConfig c = GpuConfig::mi100();
    EXPECT_EQ(c.numCus, 120u);
    // 8MB L2 total across banks.
    EXPECT_EQ(std::uint64_t{c.l2.sizeBytes} * c.l2Banks, 8ull << 20);
    EXPECT_EQ(c.dram.sizeBytes, 32ull << 30);
}

TEST(Config, WaveSlotArithmetic)
{
    GpuConfig c = GpuConfig::r9Nano();
    EXPECT_EQ(c.totalWaveSlots(), 64u * 4u * 10u);
    GpuConfig t = GpuConfig::testTiny();
    EXPECT_EQ(t.totalWaveSlots(), 4u * 4u * 10u);
}

TEST(Config, CacheSetCounts)
{
    CacheConfig c{16 * 1024, 4, 64, 16};
    EXPECT_EQ(c.numSets(), 64u);
    CacheConfig l2{256 * 1024, 16, 64, 110};
    EXPECT_EQ(l2.numSets(), 256u);
}

TEST(Config, SamplingDefaultsMatchDesignDoc)
{
    SamplingConfig s;
    EXPECT_DOUBLE_EQ(s.onlineSampleRate, 0.01); // paper: 1% of warps
    EXPECT_DOUBLE_EQ(s.dominantWarpRate, 0.95); // paper Section 4.2
    EXPECT_DOUBLE_EQ(s.stableBbRate, 0.95);     // paper Section 4.1
    EXPECT_EQ(s.bbvDims, 16u);                  // paper Figure 5
    EXPECT_TRUE(s.enableKernelSampling);
    EXPECT_TRUE(s.enableWarpSampling);
    EXPECT_TRUE(s.enableBbSampling);
    EXPECT_FALSE(s.bbSplitAtWaitcnt); // future work: off by default
}
