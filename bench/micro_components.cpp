/**
 * @file
 * google-benchmark micro-benchmarks of the simulator's hot components:
 * functional emulation, cache probing, the stability detector and the
 * signature machinery. These bound the simulator's achievable
 * throughput (and therefore every wall-time speedup in the paper
 * figures).
 */

#include <benchmark/benchmark.h>

#include "func/emulator.hpp"
#include "isa/basic_block.hpp"
#include "isa/builder.hpp"
#include "sampling/bbv.hpp"
#include "sampling/gpu_bbv.hpp"
#include "sampling/stability.hpp"
#include "sim/rng.hpp"
#include "timing/cache.hpp"
#include "timing/dram.hpp"
#include "workloads/workload.hpp"

using namespace photon;

namespace {

isa::ProgramPtr
aluLoop(std::uint32_t iters)
{
    isa::KernelBuilder b("alu_loop");
    b.vMov(1, isa::immF(1.0f));
    b.vMov(2, isa::immF(0.5f));
    b.sMov(3, isa::imm(0));
    isa::Label loop = b.label();
    b.bind(loop);
    b.vMacF32(1, isa::vreg(1), isa::vreg(2));
    b.vAddF32(2, isa::vreg(2), isa::immF(0.001f));
    b.sAdd(3, isa::sreg(3), isa::imm(1));
    b.emit(isa::Opcode::S_CMP_LT_U32, {}, isa::sreg(3), isa::imm(iters));
    b.branch(isa::Opcode::S_CBRANCH_SCC1, loop);
    b.endProgram();
    return b.finish();
}

void
BM_EmulatorAluLoop(benchmark::State &state)
{
    isa::ProgramPtr prog = aluLoop(1024);
    func::GlobalMemory mem(1 << 20);
    func::Emulator emu;
    func::LaunchDims dims{1, 1, 0};
    std::vector<std::uint8_t> lds;
    std::uint64_t insts = 0;
    for (auto _ : state) {
        func::WaveState ws;
        ws.init(*prog, dims, 0);
        insts += emu.runWave(*prog, ws, mem, lds);
    }
    state.counters["winstr/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EmulatorAluLoop);

void
BM_CacheProbe(benchmark::State &state)
{
    CacheConfig cfg{16 * 1024, 4, 64, 16};
    timing::SetAssocCache cache(cfg);
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.probe(rng.nextBelow(4096)));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheProbe);

void
BM_DramAccess(benchmark::State &state)
{
    DramConfig cfg;
    timing::Dram dram(cfg);
    Rng rng(2);
    Cycle now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(dram.access(rng.nextBelow(1 << 20), now));
        ++now;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramAccess);

void
BM_StabilityDetector(benchmark::State &state)
{
    sampling::StabilityDetector det(2048, 0.08);
    Rng rng(3);
    double t = 0;
    for (auto _ : state) {
        t += 1.0;
        det.addPoint(t, t + 100 + static_cast<double>(rng.nextBelow(10)));
        if (static_cast<std::uint64_t>(t) % 512 == 0)
            benchmark::DoNotOptimize(det.stable());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StabilityDetector);

void
BM_BbvProjection(benchmark::State &state)
{
    sampling::Bbv bbv(64);
    Rng rng(4);
    for (int i = 0; i < 1000; ++i)
        bbv.add(static_cast<isa::BbId>(rng.nextBelow(64)), 64);
    for (auto _ : state)
        benchmark::DoNotOptimize(bbv.project(16));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BbvProjection);

void
BM_GpuBbvDistance(benchmark::State &state)
{
    sampling::WarpClassifier cls;
    Rng rng(5);
    for (int w = 0; w < 64; ++w) {
        sampling::Bbv bbv(32);
        for (int i = 0; i < 100; ++i)
            bbv.add(static_cast<isa::BbId>(rng.nextBelow(32)), 64);
        cls.classify(bbv, 1000);
    }
    sampling::GpuBbv a = sampling::GpuBbv::build(cls, 16, 8);
    sampling::GpuBbv b = a;
    for (auto _ : state)
        benchmark::DoNotOptimize(a.distance(b));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GpuBbvDistance);

} // namespace

BENCHMARK_MAIN();
