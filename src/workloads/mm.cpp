/**
 * @file
 * MM — Matrix Multiplication (AMD APP SDK): C = A x B, N x N, one output
 * element per thread, a K-deep inner loop. The canonical "complex
 * kernel" workload: many warps AND many instructions per warp.
 */

#include <cmath>
#include <vector>

#include "sim/log.hpp"
#include "sim/rng.hpp"
#include "workloads/common.hpp"
#include "workloads/workload.hpp"

namespace photon::workloads {

namespace {

using namespace photon::isa;

constexpr std::uint32_t kWavesPerWg = 4;

ProgramPtr
buildMm(std::uint32_t wg_size, std::uint32_t n, std::uint32_t log_n)
{
    KernelBuilder b("mm");
    b.sLoad(3, kSgprKernargBase, 0); // A
    b.sLoad(4, kSgprKernargBase, 4); // B
    b.sLoad(5, kSgprKernargBase, 8); // C
    emitTid(b, wg_size, 1);

    b.emit(Opcode::V_AND_B32, vreg(2), vreg(1), imm(n - 1)); // j
    b.emit(Opcode::V_LSHR_B32, vreg(3), vreg(1), imm(log_n)); // i
    b.vMad(4, vreg(3), imm(n * 4), sreg(3)); // &A[i][0]
    b.vMad(5, vreg(2), imm(4), sreg(4));     // &B[0][j]
    b.vMov(6, immF(0.0f));                   // acc
    b.sMov(8, imm(0));                       // k

    Label loop = b.label();
    b.bind(loop);
    b.flatLoad(7, 4);
    b.flatLoad(9, 5);
    b.waitcnt();
    b.vMacF32(6, vreg(7), vreg(9));
    b.vAddU32(4, vreg(4), imm(4));
    b.vAddU32(5, vreg(5), imm(n * 4));
    b.sAdd(8, sreg(8), imm(1));
    b.emit(Opcode::S_CMP_LT_U32, {}, sreg(8), imm(n));
    b.branch(Opcode::S_CBRANCH_SCC1, loop);

    b.vMad(10, vreg(1), imm(4), sreg(5)); // &C[tid]
    b.flatStore(10, vreg(6));
    b.endProgram();
    return b.finish();
}

class MmWorkload : public Workload
{
  public:
    explicit MmWorkload(std::uint32_t n) : n_(n)
    {
        PHOTON_ASSERT((n_ & (n_ - 1)) == 0 && n_ >= 64,
                      "MM size must be a power of two >= 64");
        logN_ = 0;
        while ((1u << logN_) < n_)
            ++logN_;
    }

    std::string name() const override { return "MM"; }

    void
    setup(driver::Platform &p) override
    {
        std::uint64_t elems = std::uint64_t{n_} * n_;
        hostA_.resize(elems);
        hostB_.resize(elems);
        Rng rng(45);
        for (float &v : hostA_)
            v = rng.nextFloat(-1.0f, 1.0f);
        for (float &v : hostB_)
            v = rng.nextFloat(-1.0f, 1.0f);

        a_ = p.alloc(elems * 4);
        bbuf_ = p.alloc(elems * 4);
        c_ = p.alloc(elems * 4);
        p.memWrite(a_, hostA_.data(), elems * 4);
        p.memWrite(bbuf_, hostB_.data(), elems * 4);

        Addr kernarg = p.packArgs({static_cast<std::uint32_t>(a_),
                                   static_cast<std::uint32_t>(bbuf_),
                                   static_cast<std::uint32_t>(c_)});
        std::uint32_t wgs = static_cast<std::uint32_t>(
            elems / (kWavesPerWg * kWavefrontLanes));
        launches_.push_back({buildMm(kWavesPerWg * kWavefrontLanes, n_,
                                     logN_),
                             wgs, kWavesPerWg, kernarg, "mm"});
    }

    const std::vector<LaunchSpec> &launches() const override
    {
        return launches_;
    }

    bool
    check(driver::Platform &p) const override
    {
        std::uint64_t elems = std::uint64_t{n_} * n_;
        std::vector<float> got(elems);
        p.memRead(c_, got.data(), elems * 4);
        // Spot-check a grid of outputs (full N^3 reference is wasteful).
        std::uint32_t step = n_ >= 64 ? n_ / 16 : 1;
        for (std::uint32_t i = 0; i < n_; i += step) {
            for (std::uint32_t j = 0; j < n_; j += step) {
                float want = 0.0f;
                for (std::uint32_t k = 0; k < n_; ++k)
                    want += hostA_[i * n_ + k] * hostB_[k * n_ + j];
                float g = got[i * n_ + j];
                if (std::abs(g - want) >
                    1e-3f * std::max(1.0f, std::abs(want)))
                    return false;
            }
        }
        return true;
    }

    std::uint32_t dim() const { return n_; }

  private:
    std::uint32_t n_;
    std::uint32_t logN_ = 0;
    Addr a_ = 0, bbuf_ = 0, c_ = 0;
    std::vector<float> hostA_, hostB_;
    std::vector<LaunchSpec> launches_;
};

} // namespace

WorkloadPtr
makeMm(std::uint32_t n)
{
    return std::make_unique<MmWorkload>(n);
}

namespace {

/**
 * LDS-tiled matrix multiplication: each 256-thread workgroup computes a
 * 16x16 output tile, staging A/B tiles through LDS with s_barrier
 * between load and use — the classic shared-memory GEMM shape. This is
 * the workload that exercises barriers and LDS in the timing model.
 */
ProgramPtr
buildMmTiled(std::uint32_t n, std::uint32_t log_n)
{
    const std::uint32_t tiles = n / 16;
    std::uint32_t log_tiles = 0;
    while ((1u << log_tiles) < tiles)
        ++log_tiles;

    KernelBuilder b("mm_tiled");
    b.setLdsBytes(2048); // two 16x16 float tiles
    b.sLoad(3, kSgprKernargBase, 0); // A
    b.sLoad(4, kSgprKernargBase, 4); // B
    b.sLoad(5, kSgprKernargBase, 8); // C

    b.emit(Opcode::V_AND_B32, vreg(1), vreg(0), imm(15));  // tx
    b.emit(Opcode::V_LSHR_B32, vreg(2), vreg(0), imm(4));  // ty
    b.emit(Opcode::S_AND_B32, sreg(8), sreg(kSgprWorkgroupId),
           imm(tiles - 1));                                // tileX
    b.emit(Opcode::S_LSHR_B32, sreg(9), sreg(kSgprWorkgroupId),
           imm(log_tiles));                                // tileY
    b.vMad(3, sreg(9), imm(16), vreg(2)); // row = tileY*16 + ty
    b.vMad(4, sreg(8), imm(16), vreg(1)); // col = tileX*16 + tx
    b.vMov(5, immF(0.0f));                // acc
    b.sMov(10, imm(0));                   // k0

    Label loop = b.label();
    b.bind(loop);
    // Global loads of this thread's A/B tile elements.
    b.vMulU32(6, vreg(3), imm(n));        // row*N
    b.vAddU32(6, vreg(6), sreg(10));      // + k0
    b.vAddU32(6, vreg(6), vreg(1));       // + tx
    b.vMad(6, vreg(6), imm(4), sreg(3));
    b.flatLoad(7, 6);
    b.vAddU32(8, vreg(2), sreg(10));      // ty + k0
    b.vMulU32(8, vreg(8), imm(n));
    b.vAddU32(8, vreg(8), vreg(4));       // + col
    b.vMad(8, vreg(8), imm(4), sreg(4));
    b.flatLoad(9, 8);
    b.waitcnt();
    // Stage into LDS: Atile at lid*4, Btile at 1024 + lid*4.
    b.emit(Opcode::V_LSHL_B32, vreg(10), vreg(0), imm(2));
    b.dsWrite(10, vreg(7));
    b.vAddU32(11, vreg(10), imm(1024));
    b.dsWrite(11, vreg(9));
    b.barrier();
    // 16 multiply-accumulates from the staged tiles.
    for (std::uint32_t kk = 0; kk < 16; ++kk) {
        b.vMad(12, vreg(2), imm(64), imm(kk * 4)); // Atile[ty][kk]
        b.dsRead(13, 12);
        b.vMad(14, vreg(1), imm(4), imm(1024 + 64 * kk)); // Btile[kk][tx]
        b.dsRead(15, 14);
        b.waitcnt();
        b.vMacF32(5, vreg(13), vreg(15));
    }
    b.barrier(); // tiles must be consumed before the next overwrite
    b.sAdd(10, sreg(10), imm(16));
    b.emit(Opcode::S_CMP_LT_U32, {}, sreg(10), imm(n));
    b.branch(Opcode::S_CBRANCH_SCC1, loop);

    // C[row][col] = acc.
    b.emit(Opcode::V_LSHL_B32, vreg(16), vreg(3), imm(log_n));
    b.vAddU32(16, vreg(16), vreg(4));
    b.vMad(16, vreg(16), imm(4), sreg(5));
    b.flatStore(16, vreg(5));
    b.endProgram();
    return b.finish();
}

/** Same host-side setup as MmWorkload, lowered to the tiled kernel. */
class MmTiledWorkload : public Workload
{
  public:
    explicit MmTiledWorkload(std::uint32_t n) : n_(n)
    {
        PHOTON_ASSERT((n_ & (n_ - 1)) == 0 && n_ >= 64,
                      "tiled MM size must be a power of two >= 64");
        logN_ = 0;
        while ((1u << logN_) < n_)
            ++logN_;
    }

    std::string name() const override { return "MM-tiled"; }

    void
    setup(driver::Platform &p) override
    {
        std::uint64_t elems = std::uint64_t{n_} * n_;
        hostA_.resize(elems);
        hostB_.resize(elems);
        Rng rng(45); // same inputs as the naive MM
        for (float &v : hostA_)
            v = rng.nextFloat(-1.0f, 1.0f);
        for (float &v : hostB_)
            v = rng.nextFloat(-1.0f, 1.0f);

        a_ = p.alloc(elems * 4);
        bbuf_ = p.alloc(elems * 4);
        c_ = p.alloc(elems * 4);
        p.memWrite(a_, hostA_.data(), elems * 4);
        p.memWrite(bbuf_, hostB_.data(), elems * 4);

        Addr kernarg = p.packArgs({static_cast<std::uint32_t>(a_),
                                   static_cast<std::uint32_t>(bbuf_),
                                   static_cast<std::uint32_t>(c_)});
        std::uint32_t wgs = (n_ / 16) * (n_ / 16);
        launches_.push_back({buildMmTiled(n_, logN_), wgs, 4, kernarg,
                             "mm_tiled"});
    }

    const std::vector<LaunchSpec> &launches() const override
    {
        return launches_;
    }

    bool
    check(driver::Platform &p) const override
    {
        std::uint64_t elems = std::uint64_t{n_} * n_;
        std::vector<float> got(elems);
        p.memRead(c_, got.data(), elems * 4);
        std::uint32_t step = n_ >= 64 ? n_ / 16 : 1;
        for (std::uint32_t i = 0; i < n_; i += step) {
            for (std::uint32_t j = 0; j < n_; j += step) {
                float want = 0.0f;
                for (std::uint32_t k = 0; k < n_; ++k)
                    want += hostA_[i * n_ + k] * hostB_[k * n_ + j];
                float g = got[i * n_ + j];
                if (std::abs(g - want) >
                    1e-3f * std::max(1.0f, std::abs(want)))
                    return false;
            }
        }
        return true;
    }

  private:
    std::uint32_t n_;
    std::uint32_t logN_ = 0;
    Addr a_ = 0, bbuf_ = 0, c_ = 0;
    std::vector<float> hostA_, hostB_;
    std::vector<LaunchSpec> launches_;
};

} // namespace

WorkloadPtr
makeMmTiled(std::uint32_t n)
{
    return std::make_unique<MmTiledWorkload>(n);
}

} // namespace photon::workloads
