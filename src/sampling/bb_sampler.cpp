#include "sampling/bb_sampler.hpp"

#include <cmath>
#include <cstring>

namespace photon::sampling {

BbSampler::BbSampler(const isa::Program &program,
                     const isa::BasicBlockTable &bb_table,
                     const OnlineAnalysis &analysis,
                     const SamplingConfig &cfg, const GpuConfig &gpu_cfg)
    : program_(program), bbTable_(bb_table), cfg_(cfg),
      latencies_(gpu_cfg), governor_(cfg.bbWindow / 4, cfg.confirmChecks)
{
    std::size_t slots = std::size_t{bb_table.numBlocks()} * kLaneBuckets;
    detectors_.reserve(slots);
    for (std::size_t i = 0; i < slots; ++i) {
        detectors_.push_back(
            std::make_unique<StabilityDetector>(cfg.bbWindow, cfg.delta));
    }

    // Instruction-count share per block, from the online analysis
    // (paper Figure 8: the sampled distribution matches the full one).
    std::uint64_t total_insts = 0;
    for (std::uint64_t c : analysis.bbInstCounts)
        total_insts += c;
    weight_.resize(slots, 0.0);
    if (total_insts > 0) {
        for (std::size_t i = 0; i < slots; ++i) {
            weight_[i] = static_cast<double>(analysis.bbInstCounts[i]) /
                         static_cast<double>(total_insts);
        }
    }
}

void
BbSampler::onBbExecuted(isa::BbId bb, Cycle issue, Cycle retire,
                        std::uint32_t active_lanes)
{
    detectors_[bbSlot(bb, active_lanes)]->addPoint(
        static_cast<double>(issue), static_cast<double>(retire));
    governor_.recordEvent();
}

double
BbSampler::stableRate() const
{
    double rate = 0.0;
    for (std::uint32_t i = 0; i < detectors_.size(); ++i) {
        if (weight_[i] > 0.0 && detectors_[i]->stable())
            rate += weight_[i];
    }
    return rate;
}

bool
BbSampler::wantsSwitch()
{
    return governor_.poll([this] { return stableRate() >= cfg_.stableBbRate; });
}

double
BbSampler::predictSlotTime(std::uint32_t slot) const
{
    const StabilityDetector &det = *detectors_[slot];
    if (det.totalPoints() >= det.window())
        return det.meanExecTime();
    // Rare slot: barely seen in detail. Fall back to any observed
    // bucket of the same block, then to the interval model over the
    // online latency table (paper Figure 9).
    isa::BbId bb = slot / kLaneBuckets;
    const StabilityDetector *best = nullptr;
    for (std::uint32_t k = 0; k < kLaneBuckets; ++k) {
        const StabilityDetector &d = *detectors_[bb * kLaneBuckets + k];
        if (d.totalPoints() > 0 &&
            (!best || d.totalPoints() > best->totalPoints())) {
            best = &d;
        }
    }
    if (best)
        return best->meanExecTime();
    return static_cast<double>(IntervalModel::predictBb(
        program_, bbTable_.block(bb), latencies_));
}

std::uint64_t
BbSampler::stateFingerprint() const
{
    std::uint64_t h = kMemoFnvBasis;
    h = memoMix(h, detectors_.size());
    for (std::size_t i = 0; i < detectors_.size(); ++i) {
        const StabilityDetector &d = *detectors_[i];
        std::uint64_t n = d.totalPoints();
        h = memoMix(h, n);
        if (n > 0) {
            double mean = d.meanExecTime();
            std::uint64_t bits;
            static_assert(sizeof(bits) == sizeof(mean));
            std::memcpy(&bits, &mean, sizeof(bits));
            h = memoMix(h, bits);
        }
    }
    return memoMix(h, latencies_.fingerprint());
}

Cycle
BbSampler::predictWarp(const Bbv &bbv) const
{
    double total = 0.0;
    const auto &counts = bbv.counts();
    for (std::uint32_t s = 0; s < counts.size(); ++s) {
        if (counts[s] > 0)
            total += static_cast<double>(counts[s]) * predictSlotTime(s);
    }
    return static_cast<Cycle>(std::llround(total));
}

} // namespace photon::sampling
