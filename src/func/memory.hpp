/**
 * @file
 * Simulated global memory: a flat byte arena with a bump allocator.
 * Address 0 is reserved (never allocated) so that 0 can serve as a null
 * pointer in kernels.
 */

#ifndef PHOTON_FUNC_MEMORY_HPP
#define PHOTON_FUNC_MEMORY_HPP

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "sim/log.hpp"
#include "sim/types.hpp"

namespace photon::func {

/**
 * Flat simulated DRAM. Buffers are allocated sequentially; there is no
 * free() — a Platform owns one GlobalMemory per simulation and the whole
 * arena is released together.
 *
 * The backing store is calloc'd, not value-initialized: the OS hands
 * out zero pages lazily on first touch, so constructing a Platform
 * costs microseconds instead of a ~100ms 512MB memset. Semantics are
 * unchanged (untouched memory still reads as zero) — this fixed cost
 * used to dominate short campaign jobs and masked the emulate-vs-replay
 * delta bench/trace_reuse measures.
 */
class GlobalMemory
{
  public:
    /** @param capacity_bytes backing-store size actually reserved. */
    explicit GlobalMemory(std::uint64_t capacity_bytes = 512ull << 20)
        : data_(static_cast<std::uint8_t *>(
              std::calloc(capacity_bytes, 1))),
          capacity_(capacity_bytes), brk_(kLineBytes)
    {
        if (!data_)
            fatal("cannot reserve ", capacity_bytes,
                  " bytes of simulated global memory");
    }

    /** Allocate @p bytes aligned to @p align; returns the base address. */
    Addr
    allocate(std::uint64_t bytes, std::uint64_t align = kLineBytes)
    {
        Addr base = (brk_ + align - 1) / align * align;
        if (base + bytes > capacity_)
            fatal("simulated global memory exhausted (need ",
                  base + bytes, " bytes, have ", capacity_, ")");
        brk_ = base + bytes;
        return base;
    }

    /** Bytes allocated so far. */
    std::uint64_t allocated() const { return brk_; }

    std::uint32_t
    read32(Addr addr) const
    {
        boundsCheck(addr, 4);
        std::uint32_t v;
        std::memcpy(&v, data_.get() + addr, 4);
        return v;
    }

    void
    write32(Addr addr, std::uint32_t value)
    {
        boundsCheck(addr, 4);
        std::memcpy(data_.get() + addr, &value, 4);
    }

    /** Bulk host-side copy into simulated memory. */
    void
    writeBlock(Addr addr, const void *src, std::uint64_t bytes)
    {
        boundsCheck(addr, bytes);
        std::memcpy(data_.get() + addr, src, bytes);
    }

    /** Bulk host-side copy out of simulated memory. */
    void
    readBlock(Addr addr, void *dst, std::uint64_t bytes) const
    {
        boundsCheck(addr, bytes);
        std::memcpy(dst, data_.get() + addr, bytes);
    }

    /** Bounds-checked raw view of [addr, addr+bytes): gather/scatter
     *  loops validate the enclosing lane-address range once and then
     *  index relative to the returned pointer, instead of paying a
     *  bounds check per lane. */
    const std::uint8_t *
    span(Addr addr, std::uint64_t bytes) const
    {
        boundsCheck(addr, bytes);
        return data_.get() + addr;
    }

    std::uint64_t capacity() const { return capacity_; }

    /** FNV-1a over the allocated prefix [0, brk_), word-wise, plus the
     *  break itself: an input fingerprint for the trace cache. Two
     *  memories hash equally iff their allocation layout and every
     *  allocated byte match. */
    std::uint64_t
    contentHash() const
    {
        std::uint64_t h = 1469598103934665603ull;
        h ^= brk_;
        h *= 1099511628211ull;
        const std::uint8_t *p = data_.get();
        std::uint64_t i = 0;
        for (; i + 8 <= brk_; i += 8) {
            std::uint64_t w;
            std::memcpy(&w, p + i, 8);
            h ^= w;
            h *= 1099511628211ull;
        }
        for (; i < brk_; ++i) {
            h ^= p[i];
            h *= 1099511628211ull;
        }
        return h;
    }

  private:
    void
    boundsCheck(Addr addr, std::uint64_t bytes) const
    {
        if (addr + bytes > capacity_ || addr == 0)
            panic("global memory access out of bounds: addr=", addr,
                  " size=", bytes);
    }

    struct FreeDeleter
    {
        void operator()(std::uint8_t *p) const { std::free(p); }
    };
    std::unique_ptr<std::uint8_t[], FreeDeleter> data_;
    std::uint64_t capacity_;
    Addr brk_;
};

} // namespace photon::func

#endif // PHOTON_FUNC_MEMORY_HPP
