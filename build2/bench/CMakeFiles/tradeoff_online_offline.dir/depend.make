# Empty dependencies file for tradeoff_online_offline.
# This may be replaced when dependencies are built.
