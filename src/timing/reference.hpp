/**
 * @file
 * Reference timing engine: the frozen baseline the event-driven core is
 * benchmarked against and differentially tested with (DESIGN.md §13).
 *
 * This is a deliberately simple simulator: wavefront bookkeeping is an
 * array-of-structures (one aggregate Wave object per slot), arbitration
 * is a branchy oldest-warp scan over every slot, instruction latencies
 * come from a per-unit switch, and the run loop steps one cycle at a
 * time, scanning every resident CU each cycle — no calendar wheel, no
 * incremental next-event hints, no fused issue/commit fast path. It
 * models exactly the same machine as ComputeUnit/Gpu::runEventLoop and
 * must produce bit-identical outcomes (cycles, monitor callback stream,
 * memory-system access order, occupancy integrals); the golden-parity
 * tests pin that equivalence. Because it shares none of the event
 * core's scheduling structures, it stays a valid oracle and a stable
 * cost baseline: optimizations to the event core cannot leak into it.
 *
 * Engaged through RunOptions::useSeedLoop ("seed" = the seed-style
 * per-cycle scanning loop); bench/hotloop_speedup's speedup_vs_seed is
 * the event core measured against this engine.
 */

#ifndef PHOTON_TIMING_REFERENCE_HPP
#define PHOTON_TIMING_REFERENCE_HPP

#include <cstdint>
#include <vector>

#include "func/emulator.hpp"
#include "func/wave_state.hpp"
#include "isa/basic_block.hpp"
#include "sim/config.hpp"
#include "sim/phase_annotations.hpp"
#include "sim/types.hpp"
#include "timing/cu.hpp"
#include "timing/gpu.hpp"
#include "timing/memsys.hpp"
#include "timing/monitor.hpp"

namespace photon::timing {

/**
 * Array-of-structures compute unit, serial-only. The aggregate Wave is
 * intentional here — this file is the AoS baseline the SoA hot path is
 * measured against — and is exempt from the aos-in-hot-path lint.
 */
// photon-lint: aos-ok
class ReferenceCu
{
  public:
    ReferenceCu(const GpuConfig &cfg, std::uint32_t cuId,
                MemorySystem &memsys, const func::Emulator &emu);

    void startKernel(const KernelContext &ctx);
    bool canAcceptWorkgroup() const;
    void placeWorkgroup(WorkgroupId wg, Cycle now);

    /** Let every SIMD try to issue one instruction at cycle @p now,
     *  committing inline (serial semantics). @return issues. */
    std::uint32_t tick(Cycle now);

    bool idle() const { return residentWaves_ == 0; }
    std::uint32_t residentWaves() const { return residentWaves_; }
    std::uint64_t instsIssued() const { return instsIssued_; }
    std::uint32_t wavesRetired() const { return wavesRetired_; }

  private:
    struct Wave
    {
        func::WaveState ws;
        Cycle readyAt = 0;
        bool active = false;
        bool atBarrier = false;
        std::uint64_t instCount = 0;
        std::uint32_t wgSlot = 0;
        std::uint64_t lastFetchLine = ~std::uint64_t{0};
        // Dynamic basic-block tracking (monitor-observable).
        bool bbValid = false;
        isa::BbId curBb = isa::kNoBb;
        Cycle curBbIssue = 0;
        std::uint32_t curBbLanes = 0;
    };

    struct Workgroup
    {
        WorkgroupId id = 0;
        std::uint32_t wavesLeft = 0;
        std::uint32_t barrierWaiting = 0;
        std::vector<std::uint8_t> lds;
        std::vector<std::uint32_t> slots;
        bool active = false;
    };

    /** Issue slot's wavefront at @p now: functional step, per-unit
     *  latency switch, memory-system walk, monitor callbacks, barrier
     *  and retirement bookkeeping — all inline, in the same shared-state
     *  order as the event core's issueFront/commitIssue pair. The whole
     *  engine is serial-only, so these carry the commit-phase tag: the
     *  linter must treat them like the event core's commit halves. */
    PHOTON_PHASE_COMMIT
    void issueWave(std::uint32_t slot, Cycle now);
    PHOTON_PHASE_COMMIT
    void retireWave(std::uint32_t slot, Cycle now);
    PHOTON_PHASE_COMMIT
    void releaseBarrier(std::uint32_t wgSlot, Cycle now);

    const GpuConfig &cfg_;
    std::uint32_t cuId_;
    MemorySystem &memsys_;
    const func::Emulator &emu_;
    KernelContext ctx_;
    std::uint64_t codeLineBase_ = 0;

    std::vector<Wave> waves_;     ///< simdsPerCu * wavesPerSimd slots
    std::vector<Workgroup> wgs_;  ///< workgroupsPerCu slots
    std::vector<Cycle> simdFree_; ///< per-SIMD issue-port availability
    std::uint32_t residentWaves_ = 0;
    std::uint32_t residentWgs_ = 0;
    std::uint64_t instsIssued_ = 0;
    std::uint32_t wavesRetired_ = 0;

    func::StepResult step_; ///< reused per-issue functional result
    std::vector<MemorySystem::VmemMiss> misses_; ///< reused per issue
};

/**
 * Per-cycle scanning run loop over an own set of ReferenceCus, sharing
 * the Gpu's memory system, emulator and clock so seed and event runs of
 * the same platform see identical cache state. Replicates the
 * round-robin, workgroup-id-order dispatch policy and the event loop's
 * outcome accounting (occupancy integrals, IPC trace, early stop).
 */
class ReferenceEngine
{
  public:
    ReferenceEngine(const GpuConfig &cfg, MemorySystem &memsys,
                    const func::Emulator &emu);

    /** Run one kernel to completion (or drain after a monitor stop),
     *  advancing the shared clock @p now. Fills every RunOutcome field
     *  except endCycle (the caller stamps it from the clock). */
    RunOutcome run(const KernelContext &ctx, KernelMonitor *monitor,
                   const RunOptions &opts, Cycle &now);

  private:
    /** Place as many pending workgroups as capacity allows (forced
     *  rescan every cycle — the reference dispatch behaviour). */
    void tryDispatch(Cycle now);

    const GpuConfig &cfg_;
    std::vector<ReferenceCu> cus_;
    std::uint32_t numWgs_ = 0;
    std::uint32_t nextWg_ = 0;
    std::size_t rr_ = 0;
};

} // namespace photon::timing

#endif // PHOTON_TIMING_REFERENCE_HPP
