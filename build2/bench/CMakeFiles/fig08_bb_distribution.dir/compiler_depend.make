# Empty compiler generated dependencies file for fig08_bb_distribution.
# This may be replaced when dependencies are built.
