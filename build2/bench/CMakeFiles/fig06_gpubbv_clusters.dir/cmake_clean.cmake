file(REMOVE_RECURSE
  "CMakeFiles/fig06_gpubbv_clusters.dir/fig06_gpubbv_clusters.cpp.o"
  "CMakeFiles/fig06_gpubbv_clusters.dir/fig06_gpubbv_clusters.cpp.o.d"
  "fig06_gpubbv_clusters"
  "fig06_gpubbv_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_gpubbv_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
