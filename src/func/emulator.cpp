#include "func/emulator.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "sim/log.hpp"

namespace photon::func {

using isa::Opcode;
using isa::Operand;
using isa::OperandKind;

namespace {

float
asF(std::uint32_t bits)
{
    return std::bit_cast<float>(bits);
}

std::uint32_t
asU(float v)
{
    return std::bit_cast<std::uint32_t>(v);
}

/** Coalesce the per-lane line addresses gathered in @p out.lines[0..n)
 *  into the distinct set. Fast paths cover the common uniform and
 *  small-stride patterns; the general case sorts. */
void
coalesceLines(StepResult &out, std::uint32_t n)
{
    if (n == 0) {
        out.numLines = 0;
        return;
    }
    Addr lo = out.lines[0], hi = out.lines[0];
    for (std::uint32_t i = 1; i < n; ++i) {
        lo = std::min(lo, out.lines[i]);
        hi = std::max(hi, out.lines[i]);
    }
    if (lo == hi) {
        out.lines[0] = lo;
        out.numLines = 1;
        return;
    }
    if (hi - lo < kWavefrontLanes) {
        // All lines within a 64-line span: dedup via a bitmap.
        std::uint64_t map = 0;
        for (std::uint32_t i = 0; i < n; ++i)
            map |= std::uint64_t{1} << (out.lines[i] - lo);
        std::uint32_t count = 0;
        for (std::uint32_t bit = 0; map; ++bit, map >>= 1) {
            if (map & 1)
                out.lines[count++] = lo + bit;
        }
        out.numLines = count;
        return;
    }
    std::sort(out.lines.begin(), out.lines.begin() + n);
    auto last = std::unique(out.lines.begin(), out.lines.begin() + n);
    out.numLines =
        static_cast<std::uint32_t>(last - out.lines.begin());
}

} // namespace

std::uint32_t
Emulator::readScalar(const WaveState &ws, const Operand &o) const
{
    switch (o.kind) {
      case OperandKind::SReg:
        return ws.sgpr[o.value];
      case OperandKind::Imm:
        return static_cast<std::uint32_t>(o.value);
      default:
        panic("scalar operand expected");
    }
}

std::uint64_t
Emulator::readMaskOperand(const WaveState &ws, std::int32_t idx) const
{
    switch (idx) {
      case isa::kMaskVcc:
        return ws.vcc;
      case isa::kMaskExec:
        return ws.exec;
      case isa::kMaskAllOnes:
        return ~std::uint64_t{0};
      default:
        return ws.maskRegs[idx];
    }
}

void
Emulator::writeMaskOperand(WaveState &ws, std::int32_t idx,
                           std::uint64_t value) const
{
    switch (idx) {
      case isa::kMaskVcc:
        ws.vcc = value;
        break;
      case isa::kMaskExec:
        ws.exec = value;
        break;
      case isa::kMaskAllOnes:
        panic("cannot write the all-ones mask constant");
      default:
        ws.maskRegs[idx] = value;
        break;
    }
}

void
Emulator::step(const isa::Program &program, WaveState &ws,
               GlobalMemory &mem, std::vector<std::uint8_t> &lds,
               StepResult &out) const
{
    PHOTON_ASSERT(!ws.done, "stepping a finished wavefront");
    const isa::DecodedInst &dec = program.decodedAt(ws.pc);
    const isa::Instruction &inst = dec.inst;

    out.op = inst.op;
    out.unit = dec.unit;
    out.done = false;
    out.barrier = false;
    out.branchTaken = false;
    out.ldsAccesses = 0;
    out.linesWrite = false;
    out.numLines = 0;
    out.activeLanes = static_cast<std::uint32_t>(std::popcount(ws.exec));

    std::uint32_t next_pc = ws.pc + 1;

    // Iterate the set bits of EXEC: inactive lanes cost nothing, and
    // fully-active wavefronts avoid a per-lane predicate.
    auto for_active = [&](auto fn) {
        for (std::uint64_t m = ws.exec; m; m &= m - 1)
            fn(static_cast<std::uint32_t>(std::countr_zero(m)));
    };

    // Per-lane vector operand reader with the kind resolved once per
    // instruction (broadcasts scalars/immediates).
    struct Src
    {
        const std::uint32_t *vec = nullptr;
        std::uint32_t scalar = 0;
        std::uint32_t
        get(std::uint32_t lane) const
        {
            return vec ? vec[lane] : scalar;
        }
    };
    auto src_of = [&](const Operand &o) {
        Src s;
        if (o.kind == OperandKind::VReg) {
            s.vec = &ws.vgpr[std::size_t{
                                 static_cast<std::uint32_t>(o.value)} *
                             kWavefrontLanes];
        } else {
            s.scalar = readScalar(ws, o);
        }
        return s;
    };
    auto dst_of = [&](const Operand &o) {
        return &ws.vgpr[std::size_t{static_cast<std::uint32_t>(o.value)} *
                        kWavefrontLanes];
    };
    auto vsrc = [&](const Operand &o, std::uint32_t lane) -> std::uint32_t {
        if (o.kind == OperandKind::VReg)
            return ws.v(o.value, lane);
        return readScalar(ws, o);
    };

    // Vector ALU helper: applies fn over active lanes into dst.
    auto vop1 = [&](auto fn) {
        Src a = src_of(inst.src0);
        std::uint32_t *d = dst_of(inst.dst);
        for_active([&](std::uint32_t lane) { d[lane] = fn(a.get(lane)); });
    };
    auto vop2 = [&](auto fn) {
        Src a = src_of(inst.src0), b = src_of(inst.src1);
        std::uint32_t *d = dst_of(inst.dst);
        for_active([&](std::uint32_t lane) {
            d[lane] = fn(a.get(lane), b.get(lane));
        });
    };
    auto vop3 = [&](auto fn) {
        Src a = src_of(inst.src0), b = src_of(inst.src1),
            c = src_of(inst.src2);
        std::uint32_t *d = dst_of(inst.dst);
        for_active([&](std::uint32_t lane) {
            d[lane] = fn(a.get(lane), b.get(lane), c.get(lane));
        });
    };
    // Vector compare helper: writes a fresh VCC over active lanes.
    auto vcmp = [&](auto pred) {
        Src a = src_of(inst.src0), b = src_of(inst.src1);
        std::uint64_t vcc = 0;
        for_active([&](std::uint32_t lane) {
            if (pred(a.get(lane), b.get(lane)))
                vcc |= std::uint64_t{1} << lane;
        });
        ws.vcc = vcc;
    };

    auto s0 = [&] { return readScalar(ws, inst.src0); };
    auto s1 = [&] { return readScalar(ws, inst.src1); };

    switch (inst.op) {
      // ---------------- Scalar ALU ----------------
      case Opcode::S_MOV_B32:
        ws.sgpr[inst.dst.value] = s0();
        break;
      case Opcode::S_ADD_U32:
        ws.sgpr[inst.dst.value] = s0() + s1();
        break;
      case Opcode::S_SUB_U32:
        ws.sgpr[inst.dst.value] = s0() - s1();
        break;
      case Opcode::S_MUL_U32:
        ws.sgpr[inst.dst.value] = s0() * s1();
        break;
      case Opcode::S_LSHL_B32:
        ws.sgpr[inst.dst.value] = s0() << (s1() & 31);
        break;
      case Opcode::S_LSHR_B32:
        ws.sgpr[inst.dst.value] = s0() >> (s1() & 31);
        break;
      case Opcode::S_AND_B32:
        ws.sgpr[inst.dst.value] = s0() & s1();
        break;
      case Opcode::S_OR_B32:
        ws.sgpr[inst.dst.value] = s0() | s1();
        break;
      case Opcode::S_XOR_B32:
        ws.sgpr[inst.dst.value] = s0() ^ s1();
        break;
      case Opcode::S_MIN_U32:
        ws.sgpr[inst.dst.value] = std::min(s0(), s1());
        break;
      case Opcode::S_MAX_U32:
        ws.sgpr[inst.dst.value] = std::max(s0(), s1());
        break;
      case Opcode::S_CMP_LT_U32:
        ws.scc = s0() < s1();
        break;
      case Opcode::S_CMP_LE_U32:
        ws.scc = s0() <= s1();
        break;
      case Opcode::S_CMP_GT_U32:
        ws.scc = s0() > s1();
        break;
      case Opcode::S_CMP_GE_U32:
        ws.scc = s0() >= s1();
        break;
      case Opcode::S_CMP_EQ_U32:
        ws.scc = s0() == s1();
        break;
      case Opcode::S_CMP_NE_U32:
        ws.scc = s0() != s1();
        break;

      // ---------------- Mask ops ----------------
      case Opcode::S_MOV_MASK:
        writeMaskOperand(ws, inst.dst.value,
                         readMaskOperand(ws, inst.src0.value));
        break;
      case Opcode::S_AND_MASK:
        writeMaskOperand(ws, inst.dst.value,
                         readMaskOperand(ws, inst.src0.value) &
                             readMaskOperand(ws, inst.src1.value));
        break;
      case Opcode::S_OR_MASK:
        writeMaskOperand(ws, inst.dst.value,
                         readMaskOperand(ws, inst.src0.value) |
                             readMaskOperand(ws, inst.src1.value));
        break;
      case Opcode::S_ANDN2_MASK:
        writeMaskOperand(ws, inst.dst.value,
                         readMaskOperand(ws, inst.src0.value) &
                             ~readMaskOperand(ws, inst.src1.value));
        break;

      // ---------------- Control flow ----------------
      case Opcode::S_BRANCH:
        out.branchTaken = true;
        next_pc = inst.target;
        break;
      case Opcode::S_CBRANCH_SCC0:
        if (!ws.scc) {
            out.branchTaken = true;
            next_pc = inst.target;
        }
        break;
      case Opcode::S_CBRANCH_SCC1:
        if (ws.scc) {
            out.branchTaken = true;
            next_pc = inst.target;
        }
        break;
      case Opcode::S_CBRANCH_VCCZ:
        if (ws.vcc == 0) {
            out.branchTaken = true;
            next_pc = inst.target;
        }
        break;
      case Opcode::S_CBRANCH_VCCNZ:
        if (ws.vcc != 0) {
            out.branchTaken = true;
            next_pc = inst.target;
        }
        break;
      case Opcode::S_CBRANCH_EXECZ:
        if (ws.exec == 0) {
            out.branchTaken = true;
            next_pc = inst.target;
        }
        break;
      case Opcode::S_CBRANCH_EXECNZ:
        if (ws.exec != 0) {
            out.branchTaken = true;
            next_pc = inst.target;
        }
        break;
      case Opcode::S_BARRIER:
        out.barrier = true;
        break;
      case Opcode::S_WAITCNT:
      case Opcode::S_NOP:
        break;
      case Opcode::S_ENDPGM:
        ws.done = true;
        out.done = true;
        break;

      // ---------------- Scalar memory ----------------
      case Opcode::S_LOAD_DWORD: {
        Addr addr = s0() + static_cast<std::uint32_t>(inst.src1.value);
        ws.sgpr[inst.dst.value] = mem.read32(addr);
        out.lines[0] = addr / kLineBytes;
        out.numLines = 1;
        break;
      }

      // ---------------- Vector ALU ----------------
      case Opcode::V_MOV_B32:
        vop1([](std::uint32_t a) { return a; });
        break;
      case Opcode::V_ADD_U32:
        vop2([](std::uint32_t a, std::uint32_t b) { return a + b; });
        break;
      case Opcode::V_SUB_U32:
        vop2([](std::uint32_t a, std::uint32_t b) { return a - b; });
        break;
      case Opcode::V_MUL_LO_U32:
        vop2([](std::uint32_t a, std::uint32_t b) { return a * b; });
        break;
      case Opcode::V_MAD_U32:
        vop3([](std::uint32_t a, std::uint32_t b, std::uint32_t c) {
            return a * b + c;
        });
        break;
      case Opcode::V_LSHL_B32:
        vop2([](std::uint32_t a, std::uint32_t b) { return a << (b & 31); });
        break;
      case Opcode::V_LSHR_B32:
        vop2([](std::uint32_t a, std::uint32_t b) { return a >> (b & 31); });
        break;
      case Opcode::V_ASHR_I32:
        vop2([](std::uint32_t a, std::uint32_t b) {
            return static_cast<std::uint32_t>(
                static_cast<std::int32_t>(a) >> (b & 31));
        });
        break;
      case Opcode::V_AND_B32:
        vop2([](std::uint32_t a, std::uint32_t b) { return a & b; });
        break;
      case Opcode::V_OR_B32:
        vop2([](std::uint32_t a, std::uint32_t b) { return a | b; });
        break;
      case Opcode::V_XOR_B32:
        vop2([](std::uint32_t a, std::uint32_t b) { return a ^ b; });
        break;
      case Opcode::V_ADD_F32:
        vop2([](std::uint32_t a, std::uint32_t b) {
            return asU(asF(a) + asF(b));
        });
        break;
      case Opcode::V_SUB_F32:
        vop2([](std::uint32_t a, std::uint32_t b) {
            return asU(asF(a) - asF(b));
        });
        break;
      case Opcode::V_MUL_F32:
        vop2([](std::uint32_t a, std::uint32_t b) {
            return asU(asF(a) * asF(b));
        });
        break;
      case Opcode::V_MAC_F32: {
        Src a = src_of(inst.src0), b = src_of(inst.src1);
        std::uint32_t *d = dst_of(inst.dst);
        for_active([&](std::uint32_t lane) {
            d[lane] = asU(asF(d[lane]) +
                          asF(a.get(lane)) * asF(b.get(lane)));
        });
        break;
      }
      case Opcode::V_FMA_F32:
        vop3([](std::uint32_t a, std::uint32_t b, std::uint32_t c) {
            return asU(std::fma(asF(a), asF(b), asF(c)));
        });
        break;
      case Opcode::V_MAX_F32:
        vop2([](std::uint32_t a, std::uint32_t b) {
            return asU(std::max(asF(a), asF(b)));
        });
        break;
      case Opcode::V_MIN_F32:
        vop2([](std::uint32_t a, std::uint32_t b) {
            return asU(std::min(asF(a), asF(b)));
        });
        break;
      case Opcode::V_MAX_U32:
        vop2([](std::uint32_t a, std::uint32_t b) {
            return std::max(a, b);
        });
        break;
      case Opcode::V_MIN_U32:
        vop2([](std::uint32_t a, std::uint32_t b) {
            return std::min(a, b);
        });
        break;
      case Opcode::V_RCP_F32:
        vop1([](std::uint32_t a) { return asU(1.0f / asF(a)); });
        break;
      case Opcode::V_SQRT_F32:
        vop1([](std::uint32_t a) { return asU(std::sqrt(asF(a))); });
        break;
      case Opcode::V_CVT_F32_U32:
        vop1([](std::uint32_t a) {
            return asU(static_cast<float>(a));
        });
        break;
      case Opcode::V_CVT_F32_I32:
        vop1([](std::uint32_t a) {
            return asU(static_cast<float>(static_cast<std::int32_t>(a)));
        });
        break;
      case Opcode::V_CVT_U32_F32:
        vop1([](std::uint32_t a) {
            return static_cast<std::uint32_t>(asF(a));
        });
        break;
      case Opcode::V_CMP_LT_U32:
        vcmp([](std::uint32_t a, std::uint32_t b) { return a < b; });
        break;
      case Opcode::V_CMP_GE_U32:
        vcmp([](std::uint32_t a, std::uint32_t b) { return a >= b; });
        break;
      case Opcode::V_CMP_EQ_U32:
        vcmp([](std::uint32_t a, std::uint32_t b) { return a == b; });
        break;
      case Opcode::V_CMP_NE_U32:
        vcmp([](std::uint32_t a, std::uint32_t b) { return a != b; });
        break;
      case Opcode::V_CMP_LT_I32:
        vcmp([](std::uint32_t a, std::uint32_t b) {
            return static_cast<std::int32_t>(a) <
                   static_cast<std::int32_t>(b);
        });
        break;
      case Opcode::V_CMP_GE_I32:
        vcmp([](std::uint32_t a, std::uint32_t b) {
            return static_cast<std::int32_t>(a) >=
                   static_cast<std::int32_t>(b);
        });
        break;
      case Opcode::V_CMP_LT_F32:
        vcmp([](std::uint32_t a, std::uint32_t b) {
            return asF(a) < asF(b);
        });
        break;
      case Opcode::V_CMP_GT_F32:
        vcmp([](std::uint32_t a, std::uint32_t b) {
            return asF(a) > asF(b);
        });
        break;
      case Opcode::V_CMP_GE_F32:
        vcmp([](std::uint32_t a, std::uint32_t b) {
            return asF(a) >= asF(b);
        });
        break;
      case Opcode::V_CNDMASK_B32:
        for_active([&](std::uint32_t lane) {
            bool c = (ws.vcc >> lane) & 1;
            ws.v(inst.dst.value, lane) =
                c ? vsrc(inst.src1, lane) : vsrc(inst.src0, lane);
        });
        break;

      // ---------------- Vector memory ----------------
      case Opcode::FLAT_LOAD_DWORD: {
        std::uint32_t n = 0;
        for_active([&](std::uint32_t lane) {
            Addr addr = ws.v(inst.src0.value, lane);
            ws.v(inst.dst.value, lane) = mem.read32(addr);
            out.lines[n++] = addr / kLineBytes;
        });
        coalesceLines(out, n);
        break;
      }
      case Opcode::FLAT_STORE_DWORD: {
        std::uint32_t n = 0;
        for_active([&](std::uint32_t lane) {
            Addr addr = ws.v(inst.src0.value, lane);
            mem.write32(addr, vsrc(inst.src1, lane));
            out.lines[n++] = addr / kLineBytes;
        });
        coalesceLines(out, n);
        out.linesWrite = true;
        break;
      }

      // ---------------- LDS ----------------
      case Opcode::DS_READ_B32:
        for_active([&](std::uint32_t lane) {
            std::uint32_t addr = ws.v(inst.src0.value, lane);
            PHOTON_ASSERT(addr + 4 <= lds.size(), "LDS read OOB");
            std::uint32_t value;
            std::memcpy(&value, lds.data() + addr, 4);
            ws.v(inst.dst.value, lane) = value;
            ++out.ldsAccesses;
        });
        break;
      case Opcode::DS_WRITE_B32:
        for_active([&](std::uint32_t lane) {
            std::uint32_t addr = ws.v(inst.src0.value, lane);
            PHOTON_ASSERT(addr + 4 <= lds.size(), "LDS write OOB");
            std::uint32_t value = vsrc(inst.src1, lane);
            std::memcpy(lds.data() + addr, &value, 4);
            ++out.ldsAccesses;
        });
        break;

      case Opcode::NUM_OPCODES:
        panic("invalid opcode");
    }

    ws.pc = next_pc;
}

std::uint64_t
Emulator::runWave(const isa::Program &program, WaveState &ws,
                  GlobalMemory &mem, std::vector<std::uint8_t> &lds) const
{
    StepResult res;
    std::uint64_t count = 0;
    while (!ws.done) {
        step(program, ws, mem, lds, res);
        ++count;
    }
    return count;
}

} // namespace photon::func
