/**
 * @file
 * Warp-sampling (paper Section 4.2, Figure 10). Armed only when one warp
 * type dominates the online-analysis sample (>= 95%). During detailed
 * simulation, (dispatch, retire) pairs of completed warps feed a rolling
 * stability detector (n = 1024). Once stable, the remaining warps are
 * not executed at all: only the scheduler is simulated and each warp's
 * duration is the mean of the last n observed warps.
 */

#ifndef PHOTON_SAMPLING_WARP_SAMPLER_HPP
#define PHOTON_SAMPLING_WARP_SAMPLER_HPP

#include <cstdint>
#include <unordered_map>

#include "sampling/analysis.hpp"
#include "sampling/least_squares.hpp"
#include "sim/config.hpp"

namespace photon::sampling {

/** Per-kernel warp-sampling state machine. */
class WarpSampler
{
  public:
    WarpSampler(const OnlineAnalysis &analysis, const SamplingConfig &cfg);

    /** True when the kernel has a dominant warp type (the precondition
     *  from the online analysis). */
    bool armed() const { return armed_; }

    void onWaveDispatched(WarpId warp, Cycle now);
    void onWaveRetired(WarpId warp, Cycle now);

    /** True once the warp stream is stable (throttled checks). */
    bool wantsSwitch();

    /** Predicted duration of each remaining warp: mean of the last n. */
    double meanWarpDuration() const { return detector_.meanExecTime(); }

    const StabilityDetector &detector() const { return detector_; }

  private:
    const SamplingConfig &cfg_;
    bool armed_;
    StabilityDetector detector_;
    std::unordered_map<WarpId, Cycle> dispatchTime_;
    std::uint64_t eventsSinceCheck_ = 0;
    std::uint64_t checkInterval_;
    std::uint32_t confirmations_ = 0;
    bool switched_ = false;
};

} // namespace photon::sampling

#endif // PHOTON_SAMPLING_WARP_SAMPLER_HPP
