#include "sampling/gpu_bbv.hpp"

#include <algorithm>
#include <cmath>

namespace photon::sampling {

GpuBbv
GpuBbv::build(const WarpClassifier &classifier, std::uint32_t dims,
              std::uint32_t max_clusters)
{
    GpuBbv sig;
    sig.dims_ = dims;

    const auto &types = classifier.types();
    std::vector<std::uint32_t> order(types.size());
    for (std::uint32_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  if (types[a].numWarps != types[b].numWarps)
                      return types[a].numWarps > types[b].numWarps;
                  return a < b; // deterministic tie-break
              });

    std::uint32_t keep = std::min<std::uint32_t>(
        max_clusters, static_cast<std::uint32_t>(order.size()));
    sig.clusters_ = keep;
    sig.vec_.reserve(std::size_t{keep} * dims);

    double total = static_cast<double>(classifier.totalWarps());
    for (std::uint32_t c = 0; c < keep; ++c) {
        const WarpType &type = types[order[c]];
        double weight =
            total > 0 ? static_cast<double>(type.numWarps) / total : 0.0;
        std::vector<double> proj = type.bbv.project(dims);
        for (double v : proj)
            sig.vec_.push_back(weight * v);
    }
    return sig;
}

double
GpuBbv::distance(const GpuBbv &other) const
{
    if (dims_ != other.dims_)
        return 2.0;
    std::size_t n = std::max(vec_.size(), other.vec_.size());
    double d = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        double a = i < vec_.size() ? vec_[i] : 0.0;
        double b = i < other.vec_.size() ? other.vec_[i] : 0.0;
        d += std::abs(a - b);
    }
    return d;
}

} // namespace photon::sampling
