/**
 * @file
 * Versioned binary serialization of Photon's reusable per-run state: the
 * kernel-signature cache (KernelRecord + GpuBbv) and the online-analysis
 * store (paper Section 6.3, offline mode). Kernel records are
 * micro-architecture specific, so the artifact groups everything by GPU
 * configuration name; a campaign or a later process seeds fresh
 * PhotonSamplers from the matching group and gets kernel-sampling hits
 * without re-simulating.
 *
 * The format is explicitly little-endian and carries a magic + version
 * header; loaders reject unknown versions and truncated or corrupt input
 * with a diagnostic instead of crashing.
 */

#ifndef PHOTON_SERVICE_ARTIFACT_STORE_HPP
#define PHOTON_SERVICE_ARTIFACT_STORE_HPP

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "func/warp_trace.hpp"
#include "sampling/kernel_cache.hpp"
#include "sampling/photon.hpp"
#include "sim/phase_annotations.hpp"

namespace photon::service {

/** Current on-disk format version; bumped on any layout change.
 *  v1: kernels + analyses per group. v2: adds the per-launch telemetry
 *  section (loaders still accept v1 — the section is simply absent).
 *  v3: telemetry records gain wall_seconds + epoch-synchronization
 *  statistics (telemetry schema v2); v2 records load with those fields
 *  at their zero defaults.
 *  v4: telemetry records gain the timing-backend fields (backend name,
 *  per-backend cycle split, hasDetailedStats; telemetry schema v3);
 *  v3 records load as detailed-backend with full detailed stats.
 *  v5: adds the top-level functional-trace section (captured
 *  LaunchTrace blobs keyed by func::traceKey). Traces are
 *  micro-architecture independent, so they live outside the per-GPU
 *  groups; v1..v4 artifacts load with an empty trace map. */
inline constexpr std::uint32_t kArtifactVersion = 5;

/** Reusable state produced by runs on one GPU configuration. */
struct StoreGroup
{
    std::vector<sampling::KernelRecord> kernels;
    sampling::PhotonSampler::AnalysisStore analyses;
    /** Per-launch telemetry published by runs on this GPU (v2+). */
    std::vector<sampling::KernelTelemetry> telemetry;

    bool
    empty() const
    {
        return kernels.empty() && analyses.empty() && telemetry.empty();
    }
};

/** Everything a run (or campaign) can persist, keyed by GPU name. */
struct Artifact
{
    std::map<std::string, StoreGroup> groups;

    /** Captured functional traces keyed by func::traceKey() —
     *  micro-architecture independent, shared by every GPU group
     *  (v5+). The map matches TraceStore::exportAll()/import(). */
    std::map<std::string, func::LaunchTracePtr> traces;

    StoreGroup &group(const std::string &gpu) { return groups[gpu]; }

    /** Total kernel records across all groups. */
    std::size_t numKernelRecords() const;
    /** Total analysis entries across all groups. */
    std::size_t numAnalyses() const;
    /** Total telemetry records across all groups. */
    std::size_t numTelemetryRecords() const;
};

/** Outcome of a deserialization attempt. */
struct LoadStatus
{
    bool ok = true;
    std::string error;

    static LoadStatus
    fail(std::string why)
    {
        return {false, std::move(why)};
    }
};

/** Serialize @p artifact to the binary format (deterministic: map
 *  iteration order is sorted, analysis keys are sorted). */
std::string serializeArtifact(const Artifact &artifact);

/** Parse a serialized artifact; on failure @p out is left empty. */
LoadStatus deserializeArtifact(std::string_view bytes, Artifact &out);

/** Write @p artifact to @p path; returns ok=false on I/O failure.
 *  Persisted artifacts must be bit-identical across reruns, so a
 *  nondeterministic value reaching this writer is a bug. */
PHOTON_DET_SINK
LoadStatus saveArtifact(const Artifact &artifact, const std::string &path);

/** Read an artifact from @p path (I/O, magic, version and structural
 *  errors are all reported through the status). */
LoadStatus loadArtifact(const std::string &path, Artifact &out);

} // namespace photon::service

#endif // PHOTON_SERVICE_ARTIFACT_STORE_HPP
