/**
 * @file
 * SC — Simple Convolution (AMD APP SDK): a 3x3 stencil over a 2D image,
 * one output pixel per thread. Border threads are masked off, so warps
 * come in a few types (interior / partially-masked / empty), including
 * the paper's "empty task" rare-basic-block case.
 */

#include <cmath>
#include <cstring>
#include <vector>

#include "sim/log.hpp"
#include "sim/rng.hpp"
#include "workloads/common.hpp"
#include "workloads/workload.hpp"

namespace photon::workloads {

namespace {

using namespace photon::isa;

constexpr std::uint32_t kWavesPerWg = 4;

ProgramPtr
buildSc(std::uint32_t wg_size, std::uint32_t width, std::uint32_t log_w,
        std::uint32_t height)
{
    KernelBuilder b("sc");
    b.sLoad(3, kSgprKernargBase, 0); // in
    b.sLoad(4, kSgprKernargBase, 4); // out
    b.sLoad(5, kSgprKernargBase, 8); // n
    // Filter coefficients through the scalar path: s10..s18.
    for (std::uint32_t i = 0; i < 9; ++i)
        b.sLoad(10 + static_cast<std::int32_t>(i), kSgprKernargBase,
                12 + i * 4);

    emitTid(b, wg_size, 1);
    Label end = b.label();
    emitGuardLt(b, 1, sreg(5), end);

    b.emit(Opcode::V_AND_B32, vreg(2), vreg(1), imm(width - 1)); // x
    b.emit(Opcode::V_LSHR_B32, vreg(3), vreg(1), imm(log_w));    // y
    // Interior guard: 1 <= x < W-1, 1 <= y < H-1.
    auto guard = [&](Opcode cmp, std::int32_t v, std::int64_t bound) {
        b.emit(cmp, {}, vreg(v), imm(bound));
        b.emit(Opcode::S_AND_MASK, mreg(kMaskExec), mreg(kMaskExec),
               mreg(kMaskVcc));
    };
    guard(Opcode::V_CMP_GE_U32, 2, 1);
    guard(Opcode::V_CMP_LT_U32, 2, width - 1);
    guard(Opcode::V_CMP_GE_U32, 3, 1);
    guard(Opcode::V_CMP_LT_U32, 3, height - 1);
    b.branch(Opcode::S_CBRANCH_EXECZ, end);

    // v4 = in + ((y-1)*W + (x-1)) * 4.
    b.emit(Opcode::V_SUB_U32, vreg(4), vreg(3), imm(1));
    b.emit(Opcode::V_LSHL_B32, vreg(4), vreg(4), imm(log_w));
    b.emit(Opcode::V_SUB_U32, vreg(5), vreg(2), imm(1));
    b.vAddU32(4, vreg(4), vreg(5));
    b.vMad(4, vreg(4), imm(4), sreg(3));

    b.vMov(7, immF(0.0f)); // accumulator
    for (std::uint32_t r = 0; r < 3; ++r) {
        for (std::uint32_t c = 0; c < 3; ++c) {
            b.flatLoad(8, 4);
            b.waitcnt();
            b.vMacF32(7, vreg(8),
                      sreg(10 + static_cast<std::int32_t>(r * 3 + c)));
            if (c < 2)
                b.vAddU32(4, vreg(4), imm(4));
        }
        if (r < 2)
            b.vAddU32(4, vreg(4), imm((width - 2) * 4));
    }

    // Store out[y*W + x].
    b.emit(Opcode::V_LSHL_B32, vreg(9), vreg(3), imm(log_w));
    b.vAddU32(9, vreg(9), vreg(2));
    b.vMad(10, vreg(9), imm(4), sreg(4));
    b.flatStore(10, vreg(7));
    b.bind(end);
    b.endProgram();
    return b.finish();
}

class ScWorkload : public Workload
{
  public:
    ScWorkload(std::uint32_t num_warps, std::uint32_t width)
        : width_(width)
    {
        PHOTON_ASSERT((width_ & (width_ - 1)) == 0,
                      "SC width must be a power of two");
        logW_ = 0;
        while ((1u << logW_) < width_)
            ++logW_;
        std::uint32_t threads =
            workgroupsFor(num_warps, kWavesPerWg) * kWavesPerWg *
            kWavefrontLanes;
        height_ = threads / width_;
        PHOTON_ASSERT(height_ >= 4, "SC image too small for this width");
    }

    std::string name() const override { return "SC"; }

    void
    setup(driver::Platform &p) override
    {
        n_ = width_ * height_;
        hostIn_.resize(n_);
        Rng rng(44);
        for (float &v : hostIn_)
            v = rng.nextFloat(0.0f, 1.0f);
        for (float &v : filt_)
            v = rng.nextFloat(-0.3f, 0.3f);

        in_ = p.alloc(std::uint64_t{n_} * 4);
        out_ = p.alloc(std::uint64_t{n_} * 4);
        p.memWrite(in_, hostIn_.data(), std::uint64_t{n_} * 4);

        std::vector<std::uint32_t> args = {
            static_cast<std::uint32_t>(in_),
            static_cast<std::uint32_t>(out_), n_};
        for (float f : filt_) {
            std::uint32_t bits;
            std::memcpy(&bits, &f, 4);
            args.push_back(bits);
        }
        Addr kernarg = p.packArgs(args);

        std::uint32_t wgs = n_ / (kWavesPerWg * kWavefrontLanes);
        launches_.push_back({buildSc(kWavesPerWg * kWavefrontLanes,
                                     width_, logW_, height_),
                             wgs, kWavesPerWg, kernarg, "sc"});
    }

    const std::vector<LaunchSpec> &launches() const override
    {
        return launches_;
    }

    bool
    check(driver::Platform &p) const override
    {
        std::vector<float> got(n_);
        p.memRead(out_, got.data(), std::uint64_t{n_} * 4);
        for (std::uint32_t y = 1; y + 1 < height_; ++y) {
            for (std::uint32_t x = 1; x + 1 < width_; ++x) {
                float want = 0.0f;
                for (std::uint32_t r = 0; r < 3; ++r) {
                    for (std::uint32_t c = 0; c < 3; ++c) {
                        want += filt_[r * 3 + c] *
                                hostIn_[(y + r - 1) * width_ + x + c - 1];
                    }
                }
                if (std::abs(got[y * width_ + x] - want) > 1e-4f)
                    return false;
            }
        }
        return true;
    }

  private:
    std::uint32_t width_;
    std::uint32_t logW_ = 0;
    std::uint32_t height_ = 0;
    std::uint32_t n_ = 0;
    Addr in_ = 0, out_ = 0;
    float filt_[9] = {};
    std::vector<float> hostIn_;
    std::vector<LaunchSpec> launches_;
};

} // namespace

WorkloadPtr
makeSc(std::uint32_t num_warps, std::uint32_t width)
{
    return std::make_unique<ScWorkload>(num_warps, width);
}

} // namespace photon::workloads
