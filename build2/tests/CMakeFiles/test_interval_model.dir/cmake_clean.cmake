file(REMOVE_RECURSE
  "CMakeFiles/test_interval_model.dir/test_interval_model.cpp.o"
  "CMakeFiles/test_interval_model.dir/test_interval_model.cpp.o.d"
  "test_interval_model"
  "test_interval_model.pdb"
  "test_interval_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interval_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
