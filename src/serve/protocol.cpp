#include "serve/protocol.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>

namespace photon::serve {

const char *
opName(Op op)
{
    switch (op) {
      case Op::Submit: return "submit";
      case Op::Status: return "status";
      case Op::Cache: return "cache";
      case Op::Ping: return "ping";
      case Op::Shutdown: return "shutdown";
    }
    return "?";
}

namespace {

bool
parseOp(const std::string &name, Op &out)
{
    for (Op op : {Op::Submit, Op::Status, Op::Cache, Op::Ping,
                  Op::Shutdown}) {
        if (name == opName(op)) {
            out = op;
            return true;
        }
    }
    return false;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
            continue;
        }
        out.push_back(c);
    }
    return out;
}

/**
 * Minimal parser for the flat JSON objects this protocol exchanges:
 * one object of string / integer / floating / bool / null values.
 * Values are kept as raw text plus a string/literal tag; typed getters
 * convert on demand and report absent keys through their default.
 */
class FlatJson
{
  public:
    bool
    parse(const std::string &text, std::string *error)
    {
        p_ = text.c_str();
        end_ = p_ + text.size();
        skipWs();
        if (!eat('{'))
            return fail(error, "expected '{'");
        skipWs();
        if (eat('}'))
            return finish(error);
        for (;;) {
            std::string key;
            if (!parseString(key))
                return fail(error, "expected string key");
            skipWs();
            if (!eat(':'))
                return fail(error, "expected ':'");
            skipWs();
            Value v;
            if (*p_ == '"') {
                v.isString = true;
                if (!parseString(v.text))
                    return fail(error, "bad string value");
            } else {
                const char *start = p_;
                while (p_ < end_ && *p_ != ',' && *p_ != '}' &&
                       !std::isspace(static_cast<unsigned char>(*p_)))
                    ++p_;
                if (p_ == start)
                    return fail(error, "empty value");
                v.text.assign(start, p_);
            }
            values_[key] = std::move(v);
            skipWs();
            if (eat(',')) {
                skipWs();
                continue;
            }
            if (eat('}'))
                return finish(error);
            return fail(error, "expected ',' or '}'");
        }
    }

    bool has(const std::string &key) const { return values_.count(key); }

    std::string
    getString(const std::string &key, const std::string &def = "") const
    {
        auto it = values_.find(key);
        return it == values_.end() || !it->second.isString
                   ? def
                   : it->second.text;
    }

    std::uint64_t
    getU64(const std::string &key, std::uint64_t def = 0) const
    {
        auto it = values_.find(key);
        if (it == values_.end() || it->second.isString)
            return def;
        return std::strtoull(it->second.text.c_str(), nullptr, 10);
    }

    double
    getDouble(const std::string &key, double def = 0.0) const
    {
        auto it = values_.find(key);
        if (it == values_.end() || it->second.isString)
            return def;
        return std::strtod(it->second.text.c_str(), nullptr);
    }

    bool
    getBool(const std::string &key, bool def = false) const
    {
        auto it = values_.find(key);
        if (it == values_.end() || it->second.isString)
            return def;
        return it->second.text == "true";
    }

  private:
    struct Value
    {
        std::string text;
        bool isString = false;
    };

    void
    skipWs()
    {
        while (p_ < end_ && std::isspace(static_cast<unsigned char>(*p_)))
            ++p_;
    }

    bool
    eat(char c)
    {
        if (p_ < end_ && *p_ == c) {
            ++p_;
            return true;
        }
        return false;
    }

    bool
    parseString(std::string &out)
    {
        if (!eat('"'))
            return false;
        out.clear();
        while (p_ < end_ && *p_ != '"') {
            char c = *p_++;
            if (c == '\\' && p_ < end_) {
                char esc = *p_++;
                switch (esc) {
                  case 'n': c = '\n'; break;
                  case 't': c = '\t'; break;
                  case 'r': c = '\r'; break;
                  case 'u': {
                      // \u00XX only (the escapes our encoder emits).
                      if (end_ - p_ < 4)
                          return false;
                      char hex[5] = {p_[0], p_[1], p_[2], p_[3], 0};
                      c = static_cast<char>(
                          std::strtoul(hex, nullptr, 16));
                      p_ += 4;
                      break;
                  }
                  default: c = esc; break;
                }
            }
            out.push_back(c);
        }
        return eat('"');
    }

    bool
    finish(std::string *error)
    {
        skipWs();
        if (p_ != end_)
            return fail(error, "trailing bytes after object");
        return true;
    }

    static bool
    fail(std::string *error, const char *why)
    {
        if (error)
            *error = why;
        return false;
    }

    const char *p_ = nullptr;
    const char *end_ = nullptr;
    std::map<std::string, Value> values_;
};

/** Shared version check: absent or future versions are rejected. */
bool
checkVersion(const FlatJson &json, std::string *error)
{
    if (!json.has("v")) {
        if (error)
            *error = "missing protocol version field 'v'";
        return false;
    }
    std::uint64_t v = json.getU64("v");
    if (v == 0 || v > kProtocolVersion) {
        if (error)
            *error = "unsupported protocol version " + std::to_string(v) +
                     " (this build speaks " +
                     std::to_string(kProtocolVersion) + ")";
        return false;
    }
    return true;
}

void
appendStatus(std::ostringstream &os, const ServerStatus &s)
{
    os << ", \"workers\": " << s.workers
       << ", \"cu_threads\": " << s.cuThreads
       << ", \"cu_threads_degraded\": "
       << (s.cuThreadsDegraded ? "true" : "false")
       << ", \"queued\": " << s.queued << ", \"running\": " << s.running
       << ", \"submitted\": " << s.submitted
       << ", \"completed\": " << s.completed
       << ", \"draining\": " << (s.draining ? "true" : "false")
       << ", \"cache_hits\": " << s.store.cacheHits
       << ", \"cache_misses\": " << s.store.cacheMisses
       << ", \"cache_inserts\": " << s.store.cacheInserts
       << ", \"analyses_reused\": " << s.store.analysesReused
       << ", \"jobs_executed\": " << s.store.jobsExecuted
       << ", \"dedup_collapsed\": " << s.store.dedupCollapsed
       << ", \"checkpoints\": " << s.store.checkpoints
       << ", \"interval_hits\": " << s.store.intervalHits
       << ", \"interval_misses\": " << s.store.intervalMisses
       << ", \"store_records\": " << s.storeKernelRecords
       << ", \"store_analyses\": " << s.storeAnalyses
       << ", \"store_interval_entries\": " << s.storeIntervalEntries
       << ", \"trace_hits\": " << s.store.traceHits
       << ", \"trace_misses\": " << s.store.traceMisses
       << ", \"trace_captures\": " << s.store.traceCaptures
       << ", \"store_traces\": " << s.storeTraces;
}

void
readStatus(const FlatJson &json, ServerStatus &s)
{
    s.workers = static_cast<std::uint32_t>(json.getU64("workers"));
    s.cuThreads = static_cast<std::uint32_t>(json.getU64("cu_threads"));
    s.cuThreadsDegraded = json.getBool("cu_threads_degraded");
    s.queued = json.getU64("queued");
    s.running = json.getU64("running");
    s.submitted = json.getU64("submitted");
    s.completed = json.getU64("completed");
    s.draining = json.getBool("draining");
    s.store.cacheHits = json.getU64("cache_hits");
    s.store.cacheMisses = json.getU64("cache_misses");
    s.store.cacheInserts = json.getU64("cache_inserts");
    s.store.analysesReused = json.getU64("analyses_reused");
    s.store.jobsExecuted = json.getU64("jobs_executed");
    s.store.dedupCollapsed = json.getU64("dedup_collapsed");
    s.store.checkpoints = json.getU64("checkpoints");
    s.store.intervalHits = json.getU64("interval_hits");
    s.store.intervalMisses = json.getU64("interval_misses");
    s.storeKernelRecords = json.getU64("store_records");
    s.storeAnalyses = json.getU64("store_analyses");
    s.storeIntervalEntries = json.getU64("store_interval_entries");
    s.store.traceHits = json.getU64("trace_hits");
    s.store.traceMisses = json.getU64("trace_misses");
    s.store.traceCaptures = json.getU64("trace_captures");
    s.storeTraces = json.getU64("store_traces");
}

} // namespace

std::string
encodeRequest(const Request &request)
{
    std::ostringstream os;
    os << "{\"v\": " << request.v << ", \"op\": \""
       << opName(request.op) << "\", \"id\": \""
       << jsonEscape(request.id) << "\"";
    if (request.op == Op::Submit) {
        os << ", \"workload\": \"" << jsonEscape(request.spec.workload)
           << "\", \"size\": " << request.spec.size << ", \"mode\": \""
           << jsonEscape(request.spec.mode) << "\", \"gpu\": \""
           << jsonEscape(request.spec.gpu) << "\"";
        // Only non-default backends go on the wire: a default-backend
        // request line is byte-identical to what pre-backend clients
        // send, and absent means "detailed" on decode.
        if (request.spec.backend != "detailed")
            os << ", \"backend\": \"" << jsonEscape(request.spec.backend)
               << "\"";
    }
    os << "}";
    return os.str();
}

std::string
encodeResponse(const Response &response)
{
    std::ostringstream os;
    os << "{\"v\": " << response.v << ", \"id\": \""
       << jsonEscape(response.id) << "\", \"ok\": "
       << (response.ok ? "true" : "false");
    if (!response.ok)
        os << ", \"error\": \"" << jsonEscape(response.error) << "\"";
    if (response.hasResult) {
        const ServeResult &r = response.result;
        os << ", \"workload\": \"" << jsonEscape(r.spec.workload)
           << "\", \"size\": " << r.spec.size << ", \"mode\": \""
           << jsonEscape(r.spec.mode) << "\", \"gpu\": \""
           << jsonEscape(r.spec.gpu) << "\", \"backend\": \""
           << jsonEscape(r.spec.backend) << "\""
           << ", \"cycles\": " << r.cycles << ", \"insts\": " << r.insts
           << ", \"kernels\": " << r.kernels
           << ", \"kernel_hits\": " << r.kernelHits
           << ", \"cache_hit\": " << (r.cacheHit ? "true" : "false")
           << ", \"dedup_collapsed\": "
           << (r.dedupCollapsed ? "true" : "false")
           << ", \"analysis_reused\": "
           << (r.analysisReused ? "true" : "false")
           << ", \"wall_seconds\": " << r.wallSeconds
           << ", \"fingerprint\": " << r.fingerprint;
    }
    if (response.hasStatus)
        appendStatus(os, response.status);
    os << "}";
    return os.str();
}

bool
decodeRequest(const std::string &line, Request &out, std::string *error)
{
    FlatJson json;
    if (!json.parse(line, error))
        return false;
    if (!checkVersion(json, error))
        return false;
    Request r;
    r.v = static_cast<std::uint32_t>(json.getU64("v"));
    if (!parseOp(json.getString("op"), r.op)) {
        if (error)
            *error = "unknown op '" + json.getString("op") +
                     "' (submit status cache ping shutdown)";
        return false;
    }
    r.id = json.getString("id");
    if (r.op == Op::Submit) {
        r.spec.workload = json.getString("workload", r.spec.workload);
        r.spec.size = static_cast<std::uint32_t>(json.getU64("size"));
        r.spec.mode = json.getString("mode", r.spec.mode);
        r.spec.gpu = json.getString("gpu", r.spec.gpu);
        // Optional: absent (old clients) keeps the "detailed" default.
        r.spec.backend = json.getString("backend", r.spec.backend);
    }
    out = std::move(r);
    return true;
}

bool
decodeResponse(const std::string &line, Response &out, std::string *error)
{
    FlatJson json;
    if (!json.parse(line, error))
        return false;
    if (!checkVersion(json, error))
        return false;
    Response r;
    r.v = static_cast<std::uint32_t>(json.getU64("v"));
    r.id = json.getString("id");
    r.ok = json.getBool("ok");
    r.error = json.getString("error");
    if (json.has("cycles")) {
        r.hasResult = true;
        r.result.spec.workload = json.getString("workload");
        r.result.spec.size =
            static_cast<std::uint32_t>(json.getU64("size"));
        r.result.spec.mode = json.getString("mode");
        r.result.spec.gpu = json.getString("gpu");
        r.result.spec.backend =
            json.getString("backend", r.result.spec.backend);
        r.result.ok = r.ok;
        r.result.error = r.error;
        r.result.cycles = json.getU64("cycles");
        r.result.insts = json.getU64("insts");
        r.result.kernels =
            static_cast<std::uint32_t>(json.getU64("kernels"));
        r.result.kernelHits =
            static_cast<std::uint32_t>(json.getU64("kernel_hits"));
        r.result.cacheHit = json.getBool("cache_hit");
        r.result.dedupCollapsed = json.getBool("dedup_collapsed");
        r.result.analysisReused = json.getBool("analysis_reused");
        r.result.wallSeconds = json.getDouble("wall_seconds");
        r.result.fingerprint = json.getU64("fingerprint");
    }
    if (json.has("workers")) {
        r.hasStatus = true;
        readStatus(json, r.status);
    }
    out = std::move(r);
    return true;
}

} // namespace photon::serve
