/**
 * @file
 * Per-warp Basic Block Vectors (paper Observation 4/5). A BBV counts how
 * many times each static basic block was executed by one warp. Warps with
 * identical BBVs form one warp type; BBVs are also projected to a fixed
 * dimensionality (16) to build kernel-level GPU BBV signatures.
 *
 * Extension over the paper: counts are bucketed by the EXEC population
 * at block entry. The paper argues divergence is latency-neutral on its
 * AMD substrate; on this simulator a gather's memory footprint is
 * proportional to its active lanes, so blocks at different divergence
 * levels are distinct statistical units.
 */

#ifndef PHOTON_SAMPLING_BBV_HPP
#define PHOTON_SAMPLING_BBV_HPP

#include <cstdint>
#include <vector>

#include "isa/basic_block.hpp"
#include "sim/types.hpp"

namespace photon::sampling {

/** Number of active-lane buckets per static block. */
inline constexpr std::uint32_t kLaneBuckets = 4;

/** Bucket an EXEC population: 64 / 33-63 / 9-32 / 0-8 lanes. */
inline std::uint32_t
laneBucket(std::uint32_t active_lanes)
{
    if (active_lanes >= 64)
        return 3;
    if (active_lanes >= 33)
        return 2;
    if (active_lanes >= 9)
        return 1;
    return 0;
}

/** Index of (block, lane-bucket) in the extended count vector. */
inline std::uint32_t
bbSlot(isa::BbId bb, std::uint32_t active_lanes)
{
    return bb * kLaneBuckets + laneBucket(active_lanes);
}

/** Basic-block execution counts of one warp (lane-bucketed). */
class Bbv
{
  public:
    Bbv() = default;
    explicit Bbv(std::uint32_t num_blocks)
        : counts_(std::size_t{num_blocks} * kLaneBuckets, 0)
    {}

    void
    add(isa::BbId bb, std::uint32_t active_lanes, std::uint64_t n = 1)
    {
        counts_[bbSlot(bb, active_lanes)] += n;
    }

    /** Rebuild a Bbv from a previously exported count vector (the
     *  artifact-store deserialization hook). @p counts must be a
     *  multiple of kLaneBuckets long, as produced by counts(). */
    static Bbv
    fromCounts(std::vector<std::uint64_t> counts)
    {
        Bbv b;
        b.counts_ = std::move(counts);
        return b;
    }

    /** Extended (block x bucket) count vector. */
    const std::vector<std::uint64_t> &counts() const { return counts_; }

    /** Count for one (block, bucket) slot. */
    std::uint64_t
    slotCount(std::uint32_t slot) const
    {
        return counts_[slot];
    }

    /** Total executions of @p bb across all buckets. */
    std::uint64_t blockCount(isa::BbId bb) const;

    /** Total dynamic basic-block executions. */
    std::uint64_t total() const;

    /** Order-sensitive FNV-1a hash over the count vector; two warps are
     *  the same type iff their hashes (and vectors) match. */
    std::uint64_t hash() const;

    /** Hash over per-block totals, ignoring lane buckets. This is the
     *  paper's warp-type identity: warps executing identical
     *  instruction sequences are one type "independent of whether
     *  threads inside a warp are masked" (Observation 4). */
    std::uint64_t blockHash() const;

    bool operator==(const Bbv &other) const
    {
        return counts_ == other.counts_;
    }

    /**
     * Project to @p dims dimensions (paper uses 16): slot s contributes
     * its count to dimension hash(s) % dims. The result is normalised to
     * sum to 1 so signatures of different-length warps are comparable.
     */
    std::vector<double> project(std::uint32_t dims) const;

  private:
    std::vector<std::uint64_t> counts_;
};

/**
 * Tracks dynamic basic-block boundaries while a warp executes
 * functionally (mirrors the detection the timing model performs).
 * Feed the PC and EXEC mask of each instruction before it executes,
 * then finish().
 */
class BbTracker
{
  public:
    /** A completed block execution. */
    struct Event
    {
        isa::BbId bb = isa::kNoBb;
        std::uint32_t activeLanes = 0;

        bool valid() const { return bb != isa::kNoBb; }
    };

    explicit BbTracker(const isa::BasicBlockTable &table)
        : table_(table)
    {}

    /** @return the block that just *completed* (invalid Event if none). */
    Event
    onInstruction(std::uint32_t pc, std::uint64_t exec)
    {
        if (!table_.isLeader(pc))
            return {};
        Event finished{current_, currentLanes_};
        current_ = table_.blockAt(pc);
        currentLanes_ = popcount64(exec);
        return finished;
    }

    /** The block in flight at program end (always valid after at least
     *  one instruction). */
    Event
    finish()
    {
        Event last{current_, currentLanes_};
        current_ = isa::kNoBb;
        return last;
    }

  private:
    static std::uint32_t
    popcount64(std::uint64_t v)
    {
        std::uint32_t c = 0;
        while (v) {
            v &= v - 1;
            ++c;
        }
        return c;
    }

    const isa::BasicBlockTable &table_;
    isa::BbId current_ = isa::kNoBb;
    std::uint32_t currentLanes_ = 0;
};

} // namespace photon::sampling

#endif // PHOTON_SAMPLING_BBV_HPP
